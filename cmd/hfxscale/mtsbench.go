package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"time"

	"hfxmd"
	"hfxmd/internal/chem"
	"hfxmd/internal/ckpt"
	"hfxmd/internal/md"
	"hfxmd/internal/respa"
	"hfxmd/internal/scf"
)

var (
	m1Steps int
	m1Dt    float64
	m1Out   string
)

// ---------------------------------------------------------------------------
// M1: multiple-time-step AIMD cost and drift, real (not simulated)
// SCF trajectories.
//
// Three measurements, three gates:
//
//  1. MTS sweep — the same simulated time span (m1Steps inner steps of
//     m1Dt fs) integrated at k ∈ {1, 2, 4}: the full SCF surface every
//     k-th step, the analytic spring reference in between, the
//     cross-step session (ΔP warm start + pair-list rebind) feeding
//     every full evaluation. The cost metric is SCF iterations per
//     inner step — machine-independent, unlike wall clock. Gate: the
//     k=4 per-atom energy drift stays within the committed k² scaling
//     bound of the k=1 baseline (the slow component integrates at an
//     effective timestep k·δt) and under an absolute ceiling.
//  2. Reuse — the k=1 campaign re-run cold: every SCF from the SAD
//     guess, the pair list rebuilt per evaluation, no session. Gate:
//     the warm arm's SCF iterations per step undercut the cold arm's
//     by the committed factor (warm/cold ratio below m1ReuseMax).
//  3. Resume — a k=2 campaign on the deterministic cold surface is
//     crash-injected mid-cycle (between outer boundaries), resumed,
//     and its final restartable state compared against an
//     uninterrupted reference. Gate: bitwise equality of the encoded
//     states, witnessed by the sha256 committed to BENCH_mts.json.

const (
	// m1DriftK2Factor gates drift(k) against the k² scaling law with 2x
	// headroom: a missed half-kick or sign error lands orders of
	// magnitude above it.
	m1DriftK2Factor = 2.0
	// m1DriftFloor keeps the scaling gate meaningful when the k=1
	// baseline drift is at numerical zero.
	m1DriftFloor = 1e-6
	// m1DriftCeiling is the absolute per-atom drift ceiling at any k.
	m1DriftCeiling = 5e-4
	// m1ReuseMax is the committed warm/cold cost ratio: the ΔP +
	// pair-list session must shave at least 10% of the SCF iterations
	// per step off the cold-per-step baseline.
	m1ReuseMax = 0.9
)

type m1Row struct {
	K              int     `json:"k"`
	OuterSteps     int     `json:"outerSteps"`
	DriftPerAtom   float64 `json:"driftPerAtom"`
	SCFIterations  int64   `json:"scfIterations"`
	ItersPerStep   float64 `json:"scfItersPerInnerStep"`
	WarmStarts     int64   `json:"warmStarts"`
	PairListBuilds int64   `json:"pairListBuilds"`
	PairListReuses int64   `json:"pairListReuses"`
	WallNS         int64   `json:"wallNS"`
}

type m1Resume struct {
	K            int    `json:"k"`
	CrashAtStep  int64  `json:"crashAtStep"`
	ResumedSha   string `json:"resumedFinalSha256"`
	ReferenceSha string `json:"referenceFinalSha256"`
	Bitwise      bool   `json:"bitwiseIdentical"`
}

type m1Output struct {
	System            string   `json:"system"`
	Basis             string   `json:"basis"`
	InnerSteps        int      `json:"innerSteps"`
	DtFS              float64  `json:"dtFs"`
	Ref               string   `json:"ref"`
	Rows              []m1Row  `json:"rows"`
	ColdSCFIterations int64    `json:"coldScfIterations"`
	ColdItersPerStep  float64  `json:"coldScfItersPerInnerStep"`
	WarmColdRatio     float64  `json:"warmColdRatio"`
	ReuseGateMax      float64  `json:"reuseGateMax"`
	DriftK2Factor     float64  `json:"driftGateK2Factor"`
	DriftCeiling      float64  `json:"driftGateCeiling"`
	Resume            m1Resume `json:"resume"`
}

func m1FinalSha(traj *md.Trajectory) string {
	sum := sha256.Sum256(ckpt.EncodeState(traj.Final))
	return hex.EncodeToString(sum[:])
}

func expM1(_, _ *hfxmd.MachineWorkload) {
	if m1Steps < 8 || m1Steps%4 != 0 {
		log.Fatalf("-m1-steps must be a multiple of 4, >= 8 (got %d)", m1Steps)
	}
	mol := chem.LithiumHydride() // enough SCF headroom to measure warm starts
	cfg := scf.Config{Basis: "STO-3G"}
	cheap, refLabel, err := respa.BuildReference(respa.RefSpring, mol, cfg, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	// Static start: velocity noise would bury the drift signal.
	mtsOpts := func(k int) respa.Options {
		return respa.Options{Steps: m1Steps / k, K: k, Dt: m1Dt, RefLabel: refLabel}
	}

	out := m1Output{
		System: "lih", Basis: cfg.Basis, InnerSteps: m1Steps, DtFS: m1Dt, Ref: refLabel,
		ReuseGateMax: m1ReuseMax, DriftK2Factor: m1DriftK2Factor, DriftCeiling: m1DriftCeiling,
	}

	fmt.Printf("LiH/%s, %d inner steps of %.2f fs (ref %s), session-warmed full surface\n\n",
		cfg.Basis, m1Steps, m1Dt, refLabel)
	fmt.Printf("%3s %7s %14s %10s %12s %6s %13s %10s\n",
		"k", "outer", "drift [Eh/at]", "SCF iters", "iters/step", "warm", "pair b/reuse", "wall")

	drifts := map[int]float64{}
	for _, k := range []int{1, 2, 4} {
		sess := md.NewSession(cfg, md.SessionOptions{})
		full := respa.Evaluator(func(m *chem.Molecule) (float64, []chem.Vec3, error) {
			f, e, ferr := sess.Forces(m, 0, 1)
			return e, f, ferr
		})
		t0 := time.Now()
		traj, rerr := respa.Run(mol, full, cheap, mtsOpts(k))
		wall := time.Since(t0)
		if rerr != nil {
			sess.Close()
			log.Fatalf("k=%d: %v", k, rerr)
		}
		st := sess.Stats()
		sess.Close()
		drifts[k] = traj.EnergyDrift()
		row := m1Row{
			K: k, OuterSteps: m1Steps / k, DriftPerAtom: drifts[k],
			SCFIterations:  st.SCFIterations,
			ItersPerStep:   float64(st.SCFIterations) / float64(m1Steps),
			WarmStarts:     st.WarmStarts,
			PairListBuilds: st.PairListBuilds, PairListReuses: st.PairListReuses,
			WallNS: wall.Nanoseconds(),
		}
		out.Rows = append(out.Rows, row)
		fmt.Printf("%3d %7d %14.3e %10d %12.1f %6d %8d/%-4d %10v\n",
			row.K, row.OuterSteps, row.DriftPerAtom, row.SCFIterations, row.ItersPerStep,
			row.WarmStarts, row.PairListBuilds, row.PairListReuses, wall.Round(time.Millisecond))
	}

	// Drift gates: k=1 inherits the md-layer conservation scale; every
	// split stays within the k² scaling law of it and under the ceiling.
	floor := drifts[1]
	if floor < m1DriftFloor {
		floor = m1DriftFloor
	}
	for _, k := range []int{2, 4} {
		if bound := m1DriftK2Factor * float64(k*k) * floor; drifts[k] > bound {
			log.Fatalf("drift gate: k=%d drift %.3e exceeds the k^2 scaling bound %.3e (k=1 baseline %.3e)",
				k, drifts[k], bound, drifts[1])
		}
		if drifts[k] > m1DriftCeiling {
			log.Fatalf("drift gate: k=%d drift %.3e above the absolute ceiling %.1e", k, drifts[k], m1DriftCeiling)
		}
	}

	// Cold baseline: the identical k=1 campaign, every SCF from the SAD
	// guess, pair list rebuilt per evaluation. Serial workers so the
	// iteration counter needs no lock.
	var coldIters int64
	coldPot := func(m *chem.Molecule) (float64, error) {
		res, perr := scf.Run(m, cfg)
		if perr != nil {
			return 0, perr
		}
		coldIters += int64(res.Iterations)
		return res.Energy, nil
	}
	coldFull := respa.FDEvaluator(coldPot, 0, 1)
	if _, err = respa.Run(mol, coldFull, cheap, mtsOpts(1)); err != nil {
		log.Fatal(err)
	}
	out.ColdSCFIterations = coldIters
	out.ColdItersPerStep = float64(coldIters) / float64(m1Steps)
	out.WarmColdRatio = out.Rows[0].ItersPerStep / out.ColdItersPerStep
	fmt.Printf("\ncold k=1 baseline: %d SCF iterations (%.1f/step) -> warm/cold ratio %.3f (gate <= %.2f)\n",
		coldIters, out.ColdItersPerStep, out.WarmColdRatio, m1ReuseMax)
	if out.WarmColdRatio > m1ReuseMax {
		log.Fatalf("reuse gate: warm/cold SCF-iteration ratio %.3f above the committed %.2f",
			out.WarmColdRatio, m1ReuseMax)
	}

	// Resume gate: crash the deterministic cold k=2 campaign mid-cycle
	// (an odd inner step, between outer boundaries — the harder restore
	// point) and require the resumed final state to match the
	// uninterrupted reference bitwise.
	const resumeK = 2
	crashAt := int64(m1Steps/2 + 1) // odd for even m1Steps/2: mid-cycle
	if crashAt%resumeK == 0 {
		crashAt++
	}
	refTraj, err := respa.Run(mol, coldFull, cheap, mtsOpts(resumeK))
	if err != nil {
		log.Fatal(err)
	}
	refSha := m1FinalSha(refTraj)

	dir, err := os.MkdirTemp("", "hfxscale-m1-ckpt-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	w, err := ckpt.NewWriter(ckpt.Config{Dir: dir, Every: 4, Keep: 3,
		Plan: &ckpt.FaultPlan{CrashAtStep: crashAt}})
	if err != nil {
		log.Fatal(err)
	}
	victimOpts := mtsOpts(resumeK)
	victimOpts.Ckpt = w
	_, err = respa.Run(mol, coldFull, cheap, victimOpts)
	if !errors.Is(err, ckpt.ErrInjectedCrash) {
		log.Fatalf("resume gate: expected the injected crash at step %d, got %v", crashAt, err)
	}
	w.Close()

	res, err := ckpt.Load(dir, nil)
	if err != nil {
		log.Fatal(err)
	}
	w2, err := ckpt.NewWriter(ckpt.Config{Dir: dir, Every: 4, Keep: 3})
	if err != nil {
		log.Fatal(err)
	}
	resumeOpts := mtsOpts(resumeK)
	resumeOpts.Ckpt = w2
	resumeOpts.Resume = res.State
	resTraj, err := respa.Run(mol, coldFull, cheap, resumeOpts)
	if err != nil {
		log.Fatal(err)
	}
	w2.Close()
	resSha := m1FinalSha(resTraj)

	out.Resume = m1Resume{K: resumeK, CrashAtStep: crashAt,
		ResumedSha: resSha, ReferenceSha: refSha, Bitwise: resSha == refSha}
	fmt.Printf("resume: k=%d crashed at inner step %d (mid-cycle), resumed from step %d -> final state %s\n",
		resumeK, crashAt, res.State.Step, resSha[:16])
	if !out.Resume.Bitwise {
		log.Fatalf("resume gate: resumed final state %s != uninterrupted reference %s", resSha, refSha)
	}
	fmt.Printf("\ngates: drift k4 %.3e within %gx k^2 of k1 %.3e; warm/cold %.3f <= %.2f; resume bitwise\n",
		drifts[4], m1DriftK2Factor, drifts[1], out.WarmColdRatio, m1ReuseMax)

	if m1Out != "" {
		b, merr := json.MarshalIndent(out, "", " ")
		if merr != nil {
			log.Fatal(merr)
		}
		if werr := os.WriteFile(m1Out, append(b, '\n'), 0o644); werr != nil {
			log.Fatal(werr)
		}
		fmt.Printf("wrote %s\n", m1Out)
	}
}
