package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"hfxmd"
	"hfxmd/internal/fleet"
	"hfxmd/internal/server"
	"hfxmd/internal/workload"
)

var (
	c1Instances int
	c1Events    int
	c1Seed      uint64
	c1Out       string
	c1Live      bool
	c1Scale     float64
)

// c1Mix is the repeated-key job mix of the fleet benchmark: five
// distinct canonical keys across four job types and three SLO classes,
// so a couple of dozen events revisit every key several times — the
// traffic shape cache-affinity routing is built for. The campaign entry
// is a short k>1 RESPA trajectory: the longest-running, most expensive
// key in the mix, exactly the job class MD campaigns submit.
func c1Mix() []workload.MixEntry {
	return []workload.MixEntry{
		{Name: "probe", Class: "interactive", Weight: 3, KeyPool: 2,
			Request: server.JobRequest{Kind: server.KindScreen, System: "h2"}},
		{Name: "sweep", Class: "interactive", Weight: 2,
			Request: server.JobRequest{Kind: server.KindScreen, System: "lih"}},
		{Name: "fock", Class: "batch", Weight: 1,
			Request: server.JobRequest{Kind: server.KindBuildJK, System: "he"}},
		{Name: "campaign", Class: "campaign", Weight: 1,
			Request: server.JobRequest{Kind: server.KindTrajectory, System: "h2",
				MaxSteps: 2, RespaK: 2, Ref: "spring"}},
	}
}

// c1Loads are the two arrival shapes of the matrix: a steady Poisson
// stream and a bursty one (a Gamma(0.35) spike at 5× the rate after a
// calm lead-in).
func c1Loads() []workload.Spec {
	return []workload.Spec{
		{Name: "steady", Seed: c1Seed, Clients: 4, Mix: c1Mix(),
			Phases: []workload.PhaseSpec{{Events: c1Events, RateHz: 40}}},
		{Name: "burst", Seed: c1Seed + 1, Clients: 4, Mix: c1Mix(),
			Phases: []workload.PhaseSpec{
				{Events: c1Events / 2, RateHz: 20},
				{Events: c1Events - c1Events/2, RateHz: 200, GammaShape: 0.35},
			}},
	}
}

func c1Cluster(policy fleet.Policy) *fleet.Cluster {
	c, err := fleet.New(fleet.Options{
		Instances: c1Instances,
		Policy:    policy,
		Server:    server.Config{Workers: 1, QueueCap: 16},
		// The live phase plays traces far above real-time rates on
		// purpose; generous sweeps with short scaled backoffs let the
		// router wait bursts out instead of surfacing 429s to the bench.
		MaxSweeps:    50,
		BackoffScale: 0.01,
		MaxBackoff:   50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	return c
}

type c1PolicyResult struct {
	Policy string           `json:"policy"`
	Serial *workload.Report `json:"serial"`
	Live   *workload.Report `json:"live,omitempty"`
}

type c1LoadResult struct {
	Load     string           `json:"load"`
	Spec     workload.Spec    `json:"spec"`
	Policies []c1PolicyResult `json:"policies"`
}

type c1Gate struct {
	Load                 string  `json:"load"`
	WarmHitRoundRobin    float64 `json:"warmHitRoundRobin"`
	WarmHitCacheAffinity float64 `json:"warmHitCacheAffinity"`
	Pass                 bool    `json:"pass"`
}

// expC1 runs the fleet benchmark: every routing policy against every
// load shape. The serial replay per cell gives the deterministic
// numbers (per-class counts, per-instance routing, cache hit ratios,
// digests); with -c1-live each cell is also replayed as a live client
// population on a fresh fleet for latency/fairness/backpressure. Two
// invariants are enforced, not just reported: every policy must produce
// the identical result-signature stream (routing never changes
// answers), and cache-affinity must beat round-robin on warm-hit ratio
// under the repeated-key traffic.
func expC1(_, _ *hfxmd.MachineWorkload) {
	fmt.Printf("fleet: %d instances x {%v} policies, %d events/load, seed %d\n",
		c1Instances, fleet.Policies(), c1Events, c1Seed)

	closeCluster := func(c *fleet.Cluster) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := c.Close(ctx); err != nil {
			log.Fatalf("fleet close: %v", err)
		}
	}

	var loads []c1LoadResult
	var gates []c1Gate
	for _, spec := range c1Loads() {
		tr, err := workload.Generate(spec)
		if err != nil {
			log.Fatal(err)
		}
		lr := c1LoadResult{Load: spec.Name, Spec: spec}
		fmt.Printf("\nload %q: %d events, %d clients, classes %v\n",
			spec.Name, len(tr.Events), spec.Clients, tr.Classes())
		fmt.Printf("%15s %7s %6s %5s %8s | %9s %9s %9s %8s\n",
			"policy", "events", "done", "hits", "warm-hit", "p50 [ms]", "p95 [ms]", "fairness", "429s")
		sigRef := ""
		for _, p := range fleet.Policies() {
			c := c1Cluster(p)
			serial, err := workload.RunSerial(context.Background(), c, tr)
			closeCluster(c)
			if err != nil {
				log.Fatalf("%v serial replay: %v", p, err)
			}
			if sigRef == "" {
				sigRef = serial.SigDigest
			} else if serial.SigDigest != sigRef {
				log.Fatalf("policy %v changed job results: signature %s, want %s",
					p, serial.SigDigest, sigRef)
			}
			pr := c1PolicyResult{Policy: p.String(), Serial: serial}
			if c1Live {
				lc := c1Cluster(p)
				live, err := workload.RunLive(context.Background(), lc, tr,
					workload.LiveOptions{TimeScale: c1Scale, Timeout: 2 * time.Minute})
				closeCluster(lc)
				if err != nil {
					log.Fatalf("%v live replay: %v", p, err)
				}
				pr.Live = live
			}
			lr.Policies = append(lr.Policies, pr)

			var done, hits int
			for _, cr := range serial.Classes {
				done += cr.Done
				hits += cr.CacheHits
			}
			row := fmt.Sprintf("%15s %7d %6d %5d %7.1f%%", p, serial.Events, done, hits, 100*serial.WarmHitRatio())
			if pr.Live != nil {
				ic := pr.Live.Classes["interactive"]
				row += fmt.Sprintf(" | %9.2f %9.2f %9.3f %8d", ic.P50MS, ic.P95MS, pr.Live.Fairness, pr.Live.Rejected429)
			}
			fmt.Println(row)
			// One line per cell with everything a determinism check needs
			// to diff two runs: stable fields only.
			fmt.Printf("replay-digest load=%s policy=%s digest=%s sig=%s classes=%s\n",
				spec.Name, p, serial.Digest, serial.SigDigest, classCountsLine(serial))
		}
		loads = append(loads, lr)
		gates = append(gates, c1GateFor(lr))
	}

	fmt.Println()
	for _, g := range gates {
		status := "PASS"
		if !g.Pass {
			status = "FAIL"
		}
		fmt.Printf("gate %-7s warm-hit cache-affinity %.3f vs round-robin %.3f  %s\n",
			g.Load, g.WarmHitCacheAffinity, g.WarmHitRoundRobin, status)
	}
	for _, g := range gates {
		if !g.Pass {
			log.Fatalf("load %q: cache-affinity (%.3f) did not beat round-robin (%.3f) on warm-hit ratio",
				g.Load, g.WarmHitCacheAffinity, g.WarmHitRoundRobin)
		}
	}

	if c1Out != "" {
		out := struct {
			Experiment string         `json:"experiment"`
			Instances  int            `json:"instances"`
			Events     int            `json:"eventsPerLoad"`
			Seed       uint64         `json:"seed"`
			Loads      []c1LoadResult `json:"loads"`
			Gates      []c1Gate       `json:"gates"`
		}{"c1", c1Instances, c1Events, c1Seed, loads, gates}
		b, err := json.MarshalIndent(out, "", " ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(c1Out, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", c1Out)
	}
}

func c1GateFor(lr c1LoadResult) c1Gate {
	g := c1Gate{Load: lr.Load}
	for _, pr := range lr.Policies {
		switch pr.Policy {
		case fleet.RoundRobin.String():
			g.WarmHitRoundRobin = pr.Serial.WarmHitRatio()
		case fleet.CacheAffinity.String():
			g.WarmHitCacheAffinity = pr.Serial.WarmHitRatio()
		}
	}
	g.Pass = g.WarmHitCacheAffinity > g.WarmHitRoundRobin
	return g
}

// classCountsLine renders per-class counts in trace order, e.g.
// "interactive:20/20/15,batch:4/4/0" (count/done/hits).
func classCountsLine(rep *workload.Report) string {
	s := ""
	for i, cl := range rep.ClassOrder {
		if i > 0 {
			s += ","
		}
		cr := rep.Classes[cl]
		s += fmt.Sprintf("%s:%d/%d/%d", cl, cr.Count, cr.Done, cr.CacheHits)
	}
	return s
}
