// Command hfxscale reproduces the paper's machine-scale experiments on
// the BG/Q simulator and prints the corresponding tables:
//
//	E1 — strong scaling of the paper scheme to 6,291,456 threads;
//	E2 — scalability comparison against the state-of-the-art baseline
//	     (the ">20-fold improvement" claim);
//	E3 — time-to-solution comparison at fixed machine sizes (">10×");
//	A1 — load-balancer ablation (block / round-robin / LPT / steal);
//	A2 — reduction-algorithm ablation (dim-exchange / binomial / ring);
//	WK — weak scaling (system grows with the machine);
//	M0 — the simulated BG/Q partition table (shapes, threads, bisection);
//	P1 — real (non-simulated) repeated Fock builds on the persistent
//	     worker pool, with the per-phase accounting table;
//	D1 — real distributed Fock builds on the in-process mprt runtime:
//	     strong + weak scaling over rank counts, with measured parallel
//	     efficiency, per-rank communication bytes, and measured collective
//	     step counts checked against the bgq model's prediction;
//	C1 — real hfxd fleet benchmark: every routing policy (round-robin,
//	     least-loaded, cost-weighted, cache-affinity) against synthetic
//	     client populations (steady Poisson and bursty Gamma arrivals),
//	     with deterministic serial replays, per-SLO-class latency, warm
//	     cache hit ratios and the Jain fairness index;
//	S1 — real tiered-store benchmark: cold vs disk-warm vs RAM-warm
//	     service latency through a restarted hfxd instance, per-tier Get
//	     micro-latency, ERI cache spill/warm round-trip (bitwise-checked),
//	     and the fleet-wide hit-ratio gain from one shared store;
//	W1 — real deterministic work stealing under injected cost-model
//	     mispredicts and stragglers: static vs stealing measured balance
//	     across noise levels (bitwise-identical results), plus the online
//	     calibration loop's raw-vs-calibrated prediction error across
//	     successive builds;
//	M1 — real multiple-time-step AIMD: the same simulated time span
//	     integrated at RESPA k ∈ {1,2,4} with the cross-step session,
//	     SCF iterations per inner step as the cost metric, a k² drift
//	     gate, a warm-vs-cold reuse gate, and a mid-cycle crash/resume
//	     bitwise gate.
//
// `hfxscale -exp list` prints this table with one-line descriptions.
//
// Usage:
//
//	hfxscale -exp e1 -waters 4096
//	hfxscale -exp e2
//	hfxscale -exp p1 -pwaters 4 -builds 4
//	hfxscale -exp d1 -d1-waters 2 -d1-ranks 1,2,4,8,16 -d1-sched dim-exchange
//	hfxscale -exp c1 -c1-instances 3 -c1-events 24 -c1-out BENCH_fleet.json
//	hfxscale -exp all
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"hfxmd"
	"hfxmd/internal/basis"
	"hfxmd/internal/bgq"
	"hfxmd/internal/chem"
	"hfxmd/internal/hfx"
	"hfxmd/internal/integrals"
	"hfxmd/internal/linalg"
	"hfxmd/internal/mprt"
	"hfxmd/internal/sched"
	"hfxmd/internal/screen"
)

var defaultRacks = []int{1, 2, 4, 8, 16, 32, 48, 64, 96}

// experiments is the table behind -exp list: name, banner title, one-line
// description, and runner.
var experiments = []struct {
	name  string
	title string
	desc  string
	run   func(paper, base *hfxmd.MachineWorkload)
}{
	{"e1", "E1: strong scaling, paper scheme",
		"simulated strong scaling of the paper scheme to 6.3M threads", expE1},
	{"e2", "E2: scalability vs state of the art",
		"simulated comparison against the baseline (>20x scalability claim)", expE2},
	{"e3", "E3: time to solution",
		"simulated time-to-solution at fixed machine sizes (>10x claim)", expE3},
	{"a1", "A1: load-balancer ablation",
		"block / round-robin / LPT / steal balancing on 16 racks", expA1},
	{"a2", "A2: reduction-algorithm ablation",
		"dim-exchange / binomial / ring K-reduction cost", expA2},
	{"wk", "WK: weak scaling (system grows with machine)",
		"simulated weak scaling, 256 waters per rack", expWK},
	{"w1", "W1: work stealing under mispredicts (real)",
		"static vs stealing balance across noise levels, online calibration", expW1},
	{"m0", "M0: simulated platform (BG/Q partitions)",
		"partition shapes, thread counts, diameters, bisections", expM0},
	{"p1", "P1: persistent-pool Fock builds (real, not simulated)",
		"repeated real builds on one pool, per-phase accounting", expP1},
	{"d1", "D1: distributed Fock builds on the mprt runtime (real)",
		"strong+weak rank scaling: efficiency, comm bytes, steps vs model", expD1},
	{"c1", "C1: fleet routing x synthetic client populations (real)",
		"routing-policy matrix over steady/bursty workloads, SLO report", expC1},
	{"s1", "S1: tiered content-addressed store (real)",
		"cold/disk-warm/RAM-warm latency, ERI spill warm, fleet shared-store hits", expS1},
	{"m1", "M1: multiple-time-step AIMD cost and drift (real)",
		"RESPA k sweep: SCF iters/step, drift gate, warm/cold reuse, bitwise resume", expM1},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("hfxscale: ")
	var (
		exp    = flag.String("exp", "all", "experiment: e1|e2|e3|a1|a2|wk|m0|p1|d1|c1|s1|w1|m1|all|list")
		waters = flag.Int("waters", 4096, "condensed-phase system size (H2O molecules)")
		tasks  = flag.Int("tasks", 3<<20, "node-level task count of the paper decomposition")
		seed   = flag.Int64("seed", 1, "workload seed")
	)
	flag.StringVar(&p1Basis, "pbasis", "STO-3G", "basis for -exp p1")
	flag.IntVar(&p1Waters, "pwaters", 4, "cluster size for -exp p1")
	flag.IntVar(&p1Builds, "builds", 4, "Fock builds for -exp p1")
	flag.IntVar(&p1CacheMB, "cache-mb", 0, "semi-direct ERI block cache budget in MiB for -exp p1 (0 = direct)")
	flag.StringVar(&d1Ranks, "d1-ranks", "1,2,4,8,16", "comma-separated rank counts for -exp d1")
	flag.IntVar(&d1Waters, "d1-waters", 2, "strong-scaling cluster size (waters) for -exp d1; weak scaling grows from it")
	flag.IntVar(&d1Tpr, "d1-threads", 1, "threads per rank for -exp d1 (power of two)")
	flag.StringVar(&d1Sched, "d1-sched", "dim-exchange", "collective schedule for -exp d1: binomial|dim-exchange")
	flag.IntVar(&c1Instances, "c1-instances", 2, "fleet size for -exp c1")
	flag.IntVar(&c1Events, "c1-events", 24, "events per load shape for -exp c1")
	flag.Uint64Var(&c1Seed, "c1-seed", 1, "workload seed for -exp c1")
	flag.StringVar(&c1Out, "c1-out", "", "write the -exp c1 policy x load matrix to this JSON file")
	flag.BoolVar(&c1Live, "c1-live", true, "also run live (wall-clock paced) replays in -exp c1")
	flag.Float64Var(&c1Scale, "c1-scale", 0.05, "live-replay time scale for -exp c1 (0.05 = 20x speed)")
	flag.StringVar(&s1Out, "s1-out", "", "write the -exp s1 store benchmark to this JSON file")
	flag.IntVar(&s1Trials, "s1-trials", 25, "latency trials per tier for -exp s1")
	flag.IntVar(&s1Waters, "s1-waters", 2, "cluster size for the -exp s1 ERI spill phase")
	flag.IntVar(&w1Waters, "w1-waters", 2, "cluster size for -exp w1")
	flag.IntVar(&w1Ranks, "w1-ranks", 4, "mprt ranks for -exp w1")
	flag.IntVar(&w1Tpr, "w1-threads", 1, "threads per rank for -exp w1 (power of two)")
	flag.IntVar(&w1Upt, "w1-units", 4, "steal units per thread for -exp w1 (power of two)")
	flag.IntVar(&w1Builds, "w1-builds", 4, "calibration builds for -exp w1")
	flag.Uint64Var(&w1Seed, "w1-seed", 7, "noise and victim-order seed for -exp w1")
	flag.StringVar(&w1Out, "w1-out", "", "write the -exp w1 steal benchmark to this JSON file")
	flag.IntVar(&m1Steps, "m1-steps", 16, "inner MD steps (the simulated time span) for -exp m1; multiple of 4")
	flag.Float64Var(&m1Dt, "m1-dt", 0.25, "inner timestep in fs for -exp m1")
	flag.StringVar(&m1Out, "m1-out", "", "write the -exp m1 MTS benchmark to this JSON file")
	flag.Parse()

	want := strings.ToLower(*exp)
	if want == "list" {
		fmt.Printf("%-5s %s\n", "exp", "description")
		for _, e := range experiments {
			fmt.Printf("%-5s %s\n", e.name, e.desc)
		}
		return
	}
	all := want == "all"
	matched := false
	for _, e := range experiments {
		if all || want == e.name {
			matched = true
		}
	}
	if !matched {
		log.Fatalf("unknown experiment %q (use -exp list for the table)", *exp)
	}

	paper := hfxmd.CondensedPhaseWorkload(*waters, *tasks, *seed)
	base := hfxmd.BaselineWorkload(*waters, *seed)
	for _, e := range experiments {
		if all || want == e.name {
			fmt.Printf("\n================ %s ================\n", e.title)
			e.run(paper, base)
		}
	}
}

var (
	p1Basis   string
	p1Waters  int
	p1Builds  int
	p1CacheMB int

	d1Ranks  string
	d1Waters int
	d1Tpr    int
	d1Sched  string
)

// expD1 runs real distributed Fock builds on the in-process mprt runtime:
// a strong-scaling sweep (fixed system, growing rank count) followed by a
// weak-scaling sweep (system grows with the ranks). Parallel efficiency
// is measured from aggregate quartet throughput relative to the 1-rank
// baseline — on a machine with fewer cores than ranks it degrades as
// ~1/ranks, which is the honest number; the schedule-level validation
// (comm bytes, measured vs model-predicted collective steps) is
// machine-independent.
func expD1(_, _ *hfxmd.MachineWorkload) {
	schedAlg, ok := mprt.ScheduleByName(strings.ToLower(d1Sched))
	if !ok {
		log.Fatalf("unknown collective schedule %q (binomial|dim-exchange)", d1Sched)
	}
	var rankList []int
	for _, f := range strings.Split(d1Ranks, ",") {
		var r int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &r); err != nil || r < 1 {
			log.Fatalf("bad -d1-ranks entry %q", f)
		}
		rankList = append(rankList, r)
	}

	type row struct {
		ranks int
		rep   hfx.DistReport
	}
	sweep := func(mol func(ranks int) *chem.Molecule) []row {
		rows := make([]row, 0, len(rankList))
		for _, r := range rankList {
			eng := integrals.NewEngine(basis.MustBuild("STO-3G", mol(r)))
			scr := screen.BuildPairList(eng, screen.DefaultOptions())
			p := linalg.NewSquare(eng.Basis.NBasis)
			for i := 0; i < eng.Basis.NBasis; i++ {
				p.Set(i, i, 1)
			}
			_, _, rep, err := hfx.DistributedBuild(eng, scr, hfx.DistOptions{
				Ranks:          r,
				ThreadsPerRank: d1Tpr,
				Schedule:       schedAlg,
				Opts:           hfx.DefaultOptions(),
			}, p)
			if err != nil {
				log.Fatal(err)
			}
			rows = append(rows, row{r, rep})
		}
		return rows
	}
	print := func(rows []row) {
		base := float64(rows[0].rep.QuartetsComputed) / rows[0].rep.Wall.Seconds()
		fmt.Printf("%6s %12s %12s %10s %10s %12s %12s %11s\n",
			"ranks", "shape", "wall", "quartets", "eff", "comm bytes", "bytes/rank", "steps m/p")
		for _, r := range rows {
			rate := float64(r.rep.QuartetsComputed) / r.rep.Wall.Seconds()
			eff := rate / (float64(r.ranks) * base)
			fmt.Printf("%6d %12s %12v %10d %9.1f%% %12d %12d %5d/%-5d\n",
				r.ranks, r.rep.Shape, r.rep.Wall.Round(time.Microsecond),
				r.rep.QuartetsComputed, 100*eff,
				r.rep.CommBytes, r.rep.CommBytes/int64(r.ranks),
				r.rep.MeasuredSteps, r.rep.PredictedSteps)
			if r.rep.MeasuredSteps != int64(r.rep.PredictedSteps) {
				log.Fatalf("ranks=%d: measured collective steps %d diverge from bgq model prediction %d",
					r.ranks, r.rep.MeasuredSteps, r.rep.PredictedSteps)
			}
		}
	}

	fmt.Printf("schedule %v, %d thread(s)/rank\n\nstrong scaling: (H2O)_%d fixed\n",
		schedAlg, d1Tpr, d1Waters)
	print(sweep(func(int) *chem.Molecule { return chem.WaterCluster(d1Waters, 6) }))
	fmt.Printf("\nweak scaling: (H2O)_{%d x ranks}\n", d1Waters)
	print(sweep(func(r int) *chem.Molecule { return chem.WaterCluster(d1Waters*r, 6) }))
}

// expP1 runs real repeated Fock builds on one persistent builder pool
// and prints the per-phase accounting: the first build pays the scratch
// warm-up, every later build reuses the pool's buffers without
// allocating. With -cache-mb the builds are semi-direct: the first build
// fills the ERI block cache and later builds replay it.
func expP1(_, _ *hfxmd.MachineWorkload) {
	opts := hfxmd.PaperExchangeOptions()
	opts.CacheBudgetBytes = int64(p1CacheMB) << 20
	b, err := hfxmd.NewExchangeBuilder(hfxmd.WaterCluster(p1Waters, 1), p1Basis,
		hfxmd.DefaultScreening(), opts)
	if err != nil {
		log.Fatal(err)
	}
	defer b.Close()
	n := b.NBasis()
	p := linalg.NewSquare(n)
	for i := 0; i < n; i++ {
		p.Set(i, i, 1)
	}
	fmt.Printf("(H2O)_%d / %s, %d basis functions, %d builds on one pool\n\n",
		p1Waters, p1Basis, n, p1Builds)
	var rep hfxmd.ExchangeReport
	for i := 0; i < p1Builds; i++ {
		_, _, rep = b.BuildJK(p)
		fmt.Printf("build %d: wall %12v  quartets %8d  screened %8d  lanes %.2f",
			i+1, rep.Wall, rep.QuartetsComputed, rep.QuartetsScreened, rep.LaneUtilization)
		if rep.Cache.Enabled {
			fmt.Printf("  cache %d/%d hit", rep.Cache.Hits, rep.Cache.Hits+rep.Cache.Misses)
		}
		fmt.Println()
	}
	fmt.Printf("\naccounting (last build + pool lifetime):\n%s", rep.PhaseTable())
}

func expM0(_, _ *hfxmd.MachineWorkload) {
	fmt.Printf("%6s %14s %9s %10s %9s %10s\n",
		"racks", "torus", "nodes", "threads", "diameter", "bisection")
	for _, r := range defaultRacks {
		m, err := hfxmd.NewMachine(r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %14s %9d %10d %9d %10d\n",
			r, m.Torus.Shape, m.Nodes(), m.Threads(), m.Torus.Diameter(), m.Torus.BisectionLinks())
	}
}

func expWK(_, _ *hfxmd.MachineWorkload) {
	pts, err := hfxmd.WeakScaling(256, 1<<14, defaultRacks, 1, hfxmd.PaperScheme())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("256 waters per rack; flat time = ideal\n\n%6s %10s %12s %10s\n",
		"racks", "threads", "time [s]", "weak-eff")
	for _, p := range pts {
		fmt.Printf("%6d %10d %12.4f %9.1f%%\n", p.Racks, p.Threads, p.Result.Total, 100*p.Efficiency)
	}
}

func expE1(paper, _ *hfxmd.MachineWorkload) {
	pts, err := hfxmd.StrongScaling(paper, defaultRacks, hfxmd.PaperScheme())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s (total %.0f thread-seconds)\n\n", paper.Name, paper.TotalWork())
	fmt.Printf("%6s %10s %12s %10s %11s %9s\n", "racks", "threads", "time [s]", "speedup", "efficiency", "balance")
	for _, p := range pts {
		fmt.Printf("%6d %10d %12.4f %10.1f %10.1f%% %9.4f\n",
			p.Racks, p.Threads, p.Result.Total, p.Speedup, 100*p.Efficiency, p.Result.BalanceRatio)
	}
}

func expE2(paper, base *hfxmd.MachineWorkload) {
	pPts, err := hfxmd.StrongScaling(paper, defaultRacks, hfxmd.PaperScheme())
	if err != nil {
		log.Fatal(err)
	}
	bPts, err := hfxmd.StrongScaling(base, defaultRacks, hfxmd.BaselineScheme())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%6s %10s | %14s %10s | %14s %10s\n",
		"racks", "threads", "paper time [s]", "eff", "base time [s]", "eff")
	for i := range pPts {
		fmt.Printf("%6d %10d | %14.4f %9.1f%% | %14.4f %9.1f%%\n",
			pPts[i].Racks, pPts[i].Threads,
			pPts[i].Result.Total, 100*pPts[i].Efficiency,
			bPts[i].Result.Total, 100*bPts[i].Efficiency)
	}
	pSat := hfxmd.SaturationThreads(pPts)
	bSat := hfxmd.SaturationThreads(bPts)
	fmt.Printf("\nuseful threads: paper %d, baseline %d -> %.0fx scalability improvement (paper claims >20x)\n",
		pSat, bSat, float64(pSat)/float64(bSat))
}

func expE3(paper, base *hfxmd.MachineWorkload) {
	fmt.Printf("%6s %16s %16s %9s\n", "racks", "paper [s]", "baseline [s]", "ratio")
	for _, racks := range []int{4, 16, 32, 96} {
		m, err := hfxmd.NewMachine(racks)
		if err != nil {
			log.Fatal(err)
		}
		tp := m.Simulate(paper, hfxmd.PaperScheme()).Total
		tb := m.Simulate(base, hfxmd.BaselineScheme()).Total
		fmt.Printf("%6d %16.4f %16.4f %8.1fx\n", racks, tp, tb, tb/tp)
	}
	fmt.Println("(paper claims a >10-fold decrease in runtime vs directly comparable approaches)")
}

func expA1(paper, _ *hfxmd.MachineWorkload) {
	m, err := hfxmd.NewMachine(16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("16 racks, %s\n\n%14s %12s %12s\n", paper.Name, "balancer", "time [s]", "balance")
	for _, alg := range []sched.Algorithm{sched.Block, sched.RoundRobin, sched.LPT, sched.Steal} {
		opts := hfxmd.PaperScheme()
		opts.Balancer = alg
		res := m.Simulate(paper, opts)
		fmt.Printf("%14s %12.4f %12.4f\n", alg, res.Total, res.BalanceRatio)
	}
}

func expA2(paper, _ *hfxmd.MachineWorkload) {
	fmt.Printf("%6s | %14s %14s %14s   (visible reduction seconds)\n",
		"racks", "dim-exchange", "binomial", "ring")
	for _, racks := range []int{1, 8, 96} {
		m, err := hfxmd.NewMachine(racks)
		if err != nil {
			log.Fatal(err)
		}
		var vals [3]float64
		for i, alg := range []bgq.ReduceAlgorithm{bgq.DimExchange, bgq.Binomial, bgq.Ring} {
			opts := hfxmd.PaperScheme()
			opts.Reduce = alg
			opts.Overlap = 0 // expose the raw reduction cost
			vals[i] = m.Simulate(paper, opts).Reduction
		}
		fmt.Printf("%6d | %14.5f %14.5f %14.5f\n", racks, vals[0], vals[1], vals[2])
	}
}
