package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	"hfxmd"
	"hfxmd/internal/basis"
	"hfxmd/internal/chem"
	"hfxmd/internal/fleet"
	"hfxmd/internal/hfx"
	"hfxmd/internal/integrals"
	"hfxmd/internal/linalg"
	"hfxmd/internal/screen"
	"hfxmd/internal/server"
	"hfxmd/internal/store"
)

var (
	s1Out    string
	s1Trials int
	s1Waters int
)

// ---------------------------------------------------------------------------
// S1: the tiered content-addressed store, measured end to end.
//
// Four phases, all real (no simulator):
//
//  1. result tier — one hfxd instance with a store directory serves an
//     SCF job cold, RAM-warm (hot-tier hit), and — after a full restart
//     — disk-warm; HTTP-level cache hits are asserted on both boots,
//     and the per-tier latency is the answer-materialization path
//     (store Get + JobResult decode, hot tier dropped before every
//     disk trial). The acceptance ordering is cold >> disk-warm >
//     RAM-warm.
//  2. store micro-latency — Get medians against the hot tier vs the
//     disk tier (DropHot before each read) on fixed-size values,
//     isolating the tier cost from HTTP/service overhead.
//  3. ERI spill — a semi-direct builder's cache is exported through the
//     store and imported into a cold builder; the warmed build must
//     replay every quartet as a hit and match the donor bitwise.
//  4. fleet sharing — the same repeated-job workload through a
//     round-robin fleet with per-instance stores vs one shared store;
//     the shared store must raise the fleet-wide hit ratio.

type s1ResultTier struct {
	Trials        int     `json:"trials"`
	ColdNS        int64   `json:"coldNS"`
	RAMWarmP50NS  int64   `json:"ramWarmP50NS"`
	DiskWarmP50NS int64   `json:"diskWarmP50NS"`
	ColdOverDisk  float64 `json:"coldOverDisk"`
	DiskOverRAM   float64 `json:"diskOverRAM"`
}

type s1Micro struct {
	Keys      int   `json:"keys"`
	ValueSize int   `json:"valueBytes"`
	Ops       int   `json:"ops"`
	HotP50NS  int64 `json:"hotGetP50NS"`
	DiskP50NS int64 `json:"diskGetP50NS"`
}

type s1Spill struct {
	NBasis           int   `json:"nbasis"`
	SpillBytes       int   `json:"spillBytes"`
	ColdBuildNS      int64 `json:"coldBuildNS"`
	WarmBuildNS      int64 `json:"warmBuildNS"`
	WarmHits         int64 `json:"warmHits"`
	WarmMisses       int64 `json:"warmMisses"`
	BitwiseIdentical bool  `json:"bitwiseIdentical"`
}

type s1Fleet struct {
	Submitted        int64   `json:"submitted"`
	IsolatedHits     int64   `json:"isolatedHits"`
	SharedHits       int64   `json:"sharedHits"`
	IsolatedHitRatio float64 `json:"isolatedHitRatio"`
	SharedHitRatio   float64 `json:"sharedHitRatio"`
}

type s1Gate struct {
	Name string `json:"name"`
	Pass bool   `json:"pass"`
}

func expS1(_, _ *hfxmd.MachineWorkload) {
	root, err := os.MkdirTemp("", "hfxscale-s1-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	rt := s1ResultTier{Trials: s1Trials}
	req := server.JobRequest{Kind: server.KindSCF, System: "water"}

	// Phase 1: service latency through a single-instance fleet.
	storeDir := filepath.Join(root, "store")
	c := s1Cluster(storeDir)
	res, _, err := c.Submit(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	if res.State != server.StateDone || res.CacheHit {
		log.Fatalf("cold job: %+v", res)
	}
	rt.ColdNS = int64(res.RunMS * 1e6) // server-measured execution, queue excluded

	// Answer-materialization latency per tier: store Get + JobResult
	// decode — the work a hit actually does, measured without the
	// ~100x larger HTTP round-trip noise (an HTTP-level hit is still
	// asserted on both boots).
	key := "result:" + res.CacheKey // mirrors internal/server's namespace
	materialize := func(st *store.Store) time.Duration {
		t0 := time.Now()
		b, ok := st.Get(key)
		if !ok {
			log.Fatalf("result %s lost from the store", key)
		}
		var jr server.JobResult
		if err := json.Unmarshal(b, &jr); err != nil {
			log.Fatal(err)
		}
		return time.Since(t0)
	}
	if r, _, err := c.Submit(context.Background(), req); err != nil || !r.CacheHit {
		log.Fatalf("RAM-warm service hit: hit=%v err=%v", r != nil && r.CacheHit, err)
	}
	warm := make([]time.Duration, 0, s1Trials)
	for i := 0; i < s1Trials; i++ {
		warm = append(warm, materialize(c.Store()))
	}
	rt.RAMWarmP50NS = int64(median(warm))
	if err := c.Close(context.Background()); err != nil {
		log.Fatal(err)
	}

	// Restart over the same directory; every trial drops the hot tier
	// first so each read is served by the disk tier.
	c = s1Cluster(storeDir)
	if r, _, err := c.Submit(context.Background(), req); err != nil || !r.CacheHit {
		log.Fatalf("disk-warm service hit after restart: hit=%v err=%v", r != nil && r.CacheHit, err)
	}
	disk := make([]time.Duration, 0, s1Trials)
	for i := 0; i < s1Trials; i++ {
		c.Store().DropHot()
		disk = append(disk, materialize(c.Store()))
	}
	rt.DiskWarmP50NS = int64(median(disk))
	if err := c.Close(context.Background()); err != nil {
		log.Fatal(err)
	}
	rt.ColdOverDisk = float64(rt.ColdNS) / float64(max(rt.DiskWarmP50NS, 1))
	rt.DiskOverRAM = float64(rt.DiskWarmP50NS) / float64(max(rt.RAMWarmP50NS, 1))

	micro := s1MicroBench(filepath.Join(root, "micro"))
	spill := s1SpillBench(filepath.Join(root, "spill"))
	fl := s1FleetBench(filepath.Join(root, "fleet"))

	gates := []s1Gate{
		{"cold_slower_than_disk_warm", rt.ColdNS > rt.DiskWarmP50NS},
		{"disk_warm_slower_than_ram_warm", rt.DiskWarmP50NS > rt.RAMWarmP50NS},
		{"disk_get_slower_than_hot_get", micro.DiskP50NS > micro.HotP50NS},
		{"spill_warm_bitwise_and_computes_nothing", spill.BitwiseIdentical && spill.WarmMisses == 0},
		{"shared_store_raises_fleet_hit_ratio", fl.SharedHitRatio > fl.IsolatedHitRatio},
	}

	fmt.Printf("result tier (%d trials): cold %.3fms, RAM-warm p50 %.1fus, disk-warm p50 %.1fus (cold/disk %.0fx)\n",
		rt.Trials, float64(rt.ColdNS)/1e6, float64(rt.RAMWarmP50NS)/1e3,
		float64(rt.DiskWarmP50NS)/1e3, rt.ColdOverDisk)
	fmt.Printf("store Get p50 (%d keys x %dB, %d ops/tier): hot %dns, disk %dns\n",
		micro.Keys, micro.ValueSize, micro.Ops, micro.HotP50NS, micro.DiskP50NS)
	fmt.Printf("ERI spill (n=%d, %d bytes): cold build %.3fms, warmed build %.3fms, %d hits / %d misses, bitwise=%v\n",
		spill.NBasis, spill.SpillBytes, float64(spill.ColdBuildNS)/1e6,
		float64(spill.WarmBuildNS)/1e6, spill.WarmHits, spill.WarmMisses, spill.BitwiseIdentical)
	fmt.Printf("fleet of 2, %d submissions: hit ratio %.2f isolated -> %.2f shared\n",
		fl.Submitted, fl.IsolatedHitRatio, fl.SharedHitRatio)
	allPass := true
	for _, g := range gates {
		status := "PASS"
		if !g.Pass {
			status, allPass = "FAIL", false
		}
		fmt.Printf("gate %-42s %s\n", g.Name, status)
	}

	if s1Out != "" {
		out := struct {
			Experiment string       `json:"experiment"`
			ResultTier s1ResultTier `json:"resultTier"`
			MicroGet   s1Micro      `json:"microGet"`
			ERISpill   s1Spill      `json:"eriSpill"`
			Fleet      s1Fleet      `json:"fleet"`
			Gates      []s1Gate     `json:"gates"`
		}{"s1", rt, micro, spill, fl, gates}
		b, err := json.MarshalIndent(out, "", " ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(s1Out, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", s1Out)
	}
	if !allPass {
		log.Fatal("s1: acceptance gate failed")
	}
}

func s1Cluster(storeDir string) *fleet.Cluster {
	c, err := fleet.New(fleet.Options{
		Instances: 1, Policy: fleet.RoundRobin, StoreDir: storeDir,
		Server: server.Config{Workers: 1, QueueCap: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	return c
}

// s1MicroBench isolates the per-tier Get cost: medians over fixed-size
// values, with the hot entry dropped before every disk-tier read.
func s1MicroBench(dir string) s1Micro {
	const keys, valSize = 64, 4096
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	val := make([]byte, valSize)
	for i := range val {
		val[i] = byte(i)
	}
	names := make([]string, keys)
	for i := range names {
		names[i] = fmt.Sprintf("micro:%04d", i)
		if err := st.Put(names[i], val); err != nil {
			log.Fatal(err)
		}
	}
	ops := 4 * keys
	hot := make([]time.Duration, 0, ops)
	for i := 0; i < ops; i++ {
		k := names[i%keys]
		t0 := time.Now()
		if _, ok := st.Get(k); !ok {
			log.Fatalf("hot get lost %s", k)
		}
		hot = append(hot, time.Since(t0))
	}
	diskd := make([]time.Duration, 0, ops)
	for i := 0; i < ops; i++ {
		k := names[i%keys]
		st.DropHot()
		t0 := time.Now()
		if _, ok := st.Get(k); !ok {
			log.Fatalf("disk get lost %s", k)
		}
		diskd = append(diskd, time.Since(t0))
	}
	return s1Micro{Keys: keys, ValueSize: valSize, Ops: ops,
		HotP50NS: int64(median(hot)), DiskP50NS: int64(median(diskd))}
}

// s1SpillBench round-trips a filled ERI cache through the store and
// proves the warmed builder computes nothing and drifts by nothing.
func s1SpillBench(dir string) s1Spill {
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	mol := chem.WaterCluster(s1Waters, 1)
	opts := hfx.DefaultOptions()
	opts.CacheBudgetBytes = 64 << 20
	var n int
	mk := func() *hfx.Builder {
		eng := integrals.NewEngine(basis.MustBuild("STO-3G", mol))
		scr := screen.BuildPairList(eng, screen.DefaultOptions())
		n = eng.Basis.NBasis
		return hfx.NewBuilder(eng, scr, opts)
	}
	donor := mk()
	p := linalg.NewSquare(n)
	for i := 0; i < n; i++ {
		p.Set(i, i, 1)
	}
	t0 := time.Now()
	jd, kd, _ := donor.BuildJK(p)
	coldNS := time.Since(t0).Nanoseconds()
	img := donor.ExportERICache()
	if img == nil {
		log.Fatal("s1: donor exported no spill image")
	}
	if err := st.Put(donor.SpillKey(), img); err != nil {
		log.Fatal(err)
	}
	donor.Close()

	warmed := mk()
	defer warmed.Close()
	b, ok := st.Get(warmed.SpillKey())
	if !ok {
		log.Fatal("s1: spill key missing from store")
	}
	if _, err := warmed.ImportERICache(b); err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	jw, kw, rep := warmed.BuildJK(p)
	warmNS := time.Since(t0).Nanoseconds()
	return s1Spill{
		NBasis:           n,
		SpillBytes:       len(img),
		ColdBuildNS:      coldNS,
		WarmBuildNS:      warmNS,
		WarmHits:         rep.Cache.Hits,
		WarmMisses:       rep.Cache.Misses,
		BitwiseIdentical: linalg.MaxAbsDiff(jd, jw) == 0 && linalg.MaxAbsDiff(kd, kw) == 0,
	}
}

// s1FleetBench replays one repeated-job workload through a 2-instance
// round-robin fleet twice: per-instance stores, then one shared store.
// Three distinct systems over an even fleet means every repeat lands on
// the other instance first — the case sharing is for.
func s1FleetBench(dir string) s1Fleet {
	systems := []string{"h2", "he", "lih"}
	const rounds = 4
	run := func(storeDir string) (hits, submitted int64) {
		opts := fleet.Options{
			Instances: 2, Policy: fleet.RoundRobin, StoreDir: storeDir,
			Server: server.Config{Workers: 1, QueueCap: 8},
		}
		c, err := fleet.New(opts)
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close(context.Background())
		for r := 0; r < rounds; r++ {
			for _, sys := range systems {
				res, _, err := c.Submit(context.Background(),
					server.JobRequest{Kind: server.KindScreen, System: sys})
				if err != nil || res.State != server.StateDone {
					log.Fatalf("fleet %s: %v %+v", sys, err, res)
				}
			}
		}
		return c.Registry().Counter("fleet.cache_hits").Value(),
			c.Registry().Counter("fleet.submitted").Value()
	}
	isoHits, n := run("") // per-instance memory stores
	sharedHits, _ := run(filepath.Join(dir, "shared"))
	return s1Fleet{
		Submitted:        n,
		IsolatedHits:     isoHits,
		SharedHits:       sharedHits,
		IsolatedHitRatio: float64(isoHits) / float64(n),
		SharedHitRatio:   float64(sharedHits) / float64(n),
	}
}

func median(d []time.Duration) time.Duration {
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}
