package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"time"

	"hfxmd"
	"hfxmd/internal/basis"
	"hfxmd/internal/chem"
	"hfxmd/internal/hfx"
	"hfxmd/internal/integrals"
	"hfxmd/internal/linalg"
	"hfxmd/internal/mprt"
	"hfxmd/internal/screen"
	"hfxmd/internal/steal"
)

var (
	w1Waters int
	w1Ranks  int
	w1Tpr    int
	w1Upt    int
	w1Builds int
	w1Seed   uint64
	w1Out    string
)

// ---------------------------------------------------------------------------
// W1: deterministic work stealing under cost-model mispredicts, real
// (not simulated) builds on the mprt runtime.
//
// Two sweeps, two gates:
//
//  1. Noise sweep — for each mispredict level (0%, 20%, 50%, and 30%
//     plus a 4x straggler rank) the same build runs twice: static
//     placement only, and with work stealing enabled. The injected
//     noise distorts the placement model and the wall clock, never the
//     arithmetic, so all arms stay bitwise identical; only the measured
//     balance ratio (max/mean per-rank executed wall) moves. Gate:
//     under the >=20% mispredict + straggler row, stealing must beat
//     the static measured balance.
//  2. Calibration — successive builds on one stealing builder feed a
//     steal.Calibrator; each build reports the mean absolute relative
//     prediction error of the calibrated vs the raw (factor-1) model
//     over the same task samples. Gate: by the final build the
//     calibrated error is below the raw error — the learned per-class
//     factors remove systematic model bias that wall jitter cannot.

type w1Row struct {
	NoisePct   float64 `json:"noisePct"`
	Straggler  bool    `json:"straggler"`
	Steal      bool    `json:"steal"`
	BalPred    float64 `json:"balancePredicted"`
	BalMeas    float64 `json:"balanceMeasured"`
	Steals     int64   `json:"stealsSucceeded"`
	Migrated   int64   `json:"blocksMigrated"`
	ReclaimNS  int64   `json:"idleReclaimedNS"`
	WallNS     int64   `json:"wallNS"`
	JKChecksum string  `json:"jkChecksum"`
}

type w1CalibRow struct {
	Build        int     `json:"build"`
	CalErr       float64 `json:"calibratedErr"`
	RawErr       float64 `json:"rawErr"`
	Observations int64   `json:"observations"`
	Rebalanced   bool    `json:"rebalanced"`
}

type w1Output struct {
	Waters                 int          `json:"waters"`
	NBasis                 int          `json:"nbasis"`
	Ranks                  int          `json:"ranks"`
	ThreadsPerRank         int          `json:"threadsPerRank"`
	UnitsPerThread         int          `json:"unitsPerThread"`
	Units                  int          `json:"units"`
	Seed                   uint64       `json:"seed"`
	Rows                   []w1Row      `json:"rows"`
	Calibration            []w1CalibRow `json:"calibration"`
	StaticStragglerBalance float64      `json:"staticStragglerBalance"`
	StealStragglerBalance  float64      `json:"stealStragglerBalance"`
}

// jkChecksum folds both matrices into a short hex fingerprint, the
// cross-arm bitwise identity witness committed to BENCH_steal.json.
func jkChecksum(j, k *linalg.Matrix) string {
	var h uint64 = 1469598103934665603 // FNV-64a offset basis
	fold := func(m *linalg.Matrix) {
		for _, v := range m.Data {
			bits := math.Float64bits(v)
			for s := 0; s < 64; s += 8 {
				h ^= (bits >> s) & 0xff
				h *= 1099511628211
			}
		}
	}
	fold(j)
	fold(k)
	return fmt.Sprintf("%016x", h)
}

func expW1(_, _ *hfxmd.MachineWorkload) {
	eng := integrals.NewEngine(basis.MustBuild("STO-3G", chem.WaterCluster(w1Waters, 6)))
	scr := screen.BuildPairList(eng, screen.DefaultOptions())
	n := eng.Basis.NBasis
	// A dense seeded density: an identity matrix would let density
	// screening skip most of the real work, leaving measured walls
	// overhead-dominated and useless for calibration.
	rng := rand.New(rand.NewSource(int64(w1Seed)))
	p := linalg.NewSquare(n)
	for i := 0; i < n; i++ {
		p.Set(i, i, 1+0.5*rng.Float64())
		for j := i + 1; j < n; j++ {
			v := 0.2 * rng.NormFloat64()
			p.Set(i, j, v)
			p.Set(j, i, v)
		}
	}

	runArm := func(noise *steal.NoisePlan, stealOn bool) (hfx.StealReport, string) {
		b, err := hfx.NewStealBuilder(eng, scr, hfx.StealOptions{
			Ranks:          w1Ranks,
			ThreadsPerRank: w1Tpr,
			UnitsPerThread: w1Upt,
			Schedule:       mprt.DimExchange,
			Opts:           hfx.DefaultOptions(),
			Steal:          stealOn,
			Noise:          noise,
			Seed:           w1Seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer b.Close()
		j, k, rep, err := b.BuildJK(p)
		if err != nil {
			log.Fatal(err)
		}
		return rep, jkChecksum(j, k)
	}

	out := w1Output{
		Waters: w1Waters, NBasis: n,
		Ranks: w1Ranks, ThreadsPerRank: w1Tpr, UnitsPerThread: w1Upt,
		Units: w1Ranks * w1Tpr * w1Upt, Seed: w1Seed,
	}

	fmt.Printf("(H2O)_%d, %d basis functions; %d ranks x %d threads x %d units = %d steal units\n\n",
		w1Waters, n, w1Ranks, w1Tpr, w1Upt, out.Units)
	fmt.Printf("%7s %10s | %9s %9s %7s %9s | %9s %9s %7s %9s\n",
		"noise", "straggler", "stat pred", "stat meas", "", "", "steal prd", "steal mea", "steals", "reclaimed")

	type level struct {
		pct       float64
		straggler bool
	}
	levels := []level{{0, false}, {0.2, false}, {0.5, false}, {0.3, true}}
	for _, lv := range levels {
		var noise *steal.NoisePlan
		if lv.pct > 0 || lv.straggler {
			noise = &steal.NoisePlan{Seed: w1Seed, Pct: lv.pct}
			if lv.straggler {
				noise.StragglerRank = 1
				noise.StragglerSlow = 4.0
			}
		}
		statRep, statSum := runArm(noise, false)
		stealRep, stealSum := runArm(noise, true)
		if statSum != stealSum {
			log.Fatalf("noise %.0f%%: static and stealing J/K diverged (%s vs %s) — the bitwise pin is broken",
				100*lv.pct, statSum, stealSum)
		}
		strag := " "
		if lv.straggler {
			strag = "4x@r1"
		}
		fmt.Printf("%6.0f%% %10s | %9.3f %9.3f %7s %9s | %9.3f %9.3f %7d %9v\n",
			100*lv.pct, strag,
			statRep.BalanceRatioPredicted, statRep.BalanceRatioMeasured, "", "",
			stealRep.BalanceRatioPredicted, stealRep.BalanceRatioMeasured,
			stealRep.StealsSucceeded, stealRep.IdleReclaimed.Round(time.Microsecond))
		for _, arm := range []struct {
			rep hfx.StealReport
			on  bool
			sum string
		}{{statRep, false, statSum}, {stealRep, true, stealSum}} {
			out.Rows = append(out.Rows, w1Row{
				NoisePct: lv.pct, Straggler: lv.straggler, Steal: arm.on,
				BalPred: arm.rep.BalanceRatioPredicted, BalMeas: arm.rep.BalanceRatioMeasured,
				Steals: arm.rep.StealsSucceeded, Migrated: arm.rep.BlocksMigrated,
				ReclaimNS: arm.rep.IdleReclaimed.Nanoseconds(),
				WallNS:    arm.rep.Wall.Nanoseconds(), JKChecksum: arm.sum,
			})
		}
		if lv.straggler {
			out.StaticStragglerBalance = statRep.BalanceRatioMeasured
			out.StealStragglerBalance = stealRep.BalanceRatioMeasured
			// The balance gate: >=20% mispredicts plus a straggler the
			// placement model cannot see. Static has no recourse; stealing
			// must measurably recover.
			if stealRep.StealsSucceeded == 0 {
				log.Fatal("straggler row: stealing arm migrated nothing")
			}
			if stealRep.BalanceRatioMeasured >= statRep.BalanceRatioMeasured {
				log.Fatalf("straggler row: stealing measured balance %.3f did not beat static %.3f",
					stealRep.BalanceRatioMeasured, statRep.BalanceRatioMeasured)
			}
		}
	}

	// Calibration loop: one stealing builder, a fresh calibrator, and
	// w1Builds successive builds re-balanced as the factors converge.
	cal := steal.NewCalibrator(0.5)
	cb, err := hfx.NewStealBuilder(eng, scr, hfx.StealOptions{
		Ranks:          w1Ranks,
		ThreadsPerRank: w1Tpr,
		UnitsPerThread: w1Upt,
		Schedule:       mprt.DimExchange,
		Opts:           hfx.DefaultOptions(),
		Steal:          true,
		Calibrator:     cal,
		Seed:           w1Seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cb.Close()
	fmt.Printf("\ncalibration (%d builds, alpha 0.5):\n%6s %14s %14s %8s %11s\n",
		w1Builds, "build", "calibrated err", "raw err", "obs", "rebalanced")
	var last w1CalibRow
	for i := 0; i < w1Builds; i++ {
		_, _, rep, err := cb.BuildJK(p)
		if err != nil {
			log.Fatal(err)
		}
		last = w1CalibRow{
			Build: i + 1, CalErr: rep.CalibMeanAbsErr, RawErr: rep.CalibRawAbsErr,
			Observations: rep.CalibObservations, Rebalanced: rep.Rebalanced,
		}
		out.Calibration = append(out.Calibration, last)
		fmt.Printf("%6d %14.4f %14.4f %8d %11v\n",
			last.Build, last.CalErr, last.RawErr, last.Observations, last.Rebalanced)
	}
	// The calibration gate: over the final build's samples, the learned
	// factors must predict better than the raw cost model. Jitter hits
	// both error series identically; the gap is the removed bias.
	if last.CalErr >= last.RawErr {
		log.Fatalf("calibration: final build's calibrated error %.4f not below raw %.4f",
			last.CalErr, last.RawErr)
	}
	fmt.Printf("\ngates: steal balance %.3f < static %.3f under straggler; calibrated err %.4f < raw %.4f\n",
		out.StealStragglerBalance, out.StaticStragglerBalance, last.CalErr, last.RawErr)

	if w1Out != "" {
		b, err := json.MarshalIndent(out, "", " ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(w1Out, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", w1Out)
	}
}
