// Command solvents reproduces the paper's chemistry result (experiment
// E8): the stability of Li/air battery electrolyte solvents against
// attack by the discharge product lithium peroxide (Li2O2).
//
// For each solvent it computes a rigid-fragment approach profile of a
// Li2O2 unit along the solvent's sterically open axis towards the
// electrophilic centre (the carbonate carbon of propylene carbonate; the
// sulfur of dimethyl sulfoxide) and reports the interaction energies —
// the precursor of the degradation pathway the paper identifies for PC
// and the enhanced stability it predicts for alternative solvents.
//
// Usage:
//
//	solvents -functional HF -points 5
//	solvents -functional PBE0 -screen 1e-6   (slower, paper's method)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"hfxmd"
	"hfxmd/internal/phys"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("solvents: ")
	var (
		functional = flag.String("functional", "HF", "functional: HF|LDA|PBE|PBE0")
		basisName  = flag.String("basis", "STO-3G", "basis set")
		eps        = flag.Float64("screen", 1e-6, "integral screening threshold")
		points     = flag.Int("points", 5, "number of scan points")
		rmin       = flag.Float64("rmin", 3.4, "closest approach (bohr)")
		rmax       = flag.Float64("rmax", 9.0, "farthest approach (bohr)")
		jsonOut    = flag.Bool("json", false, "emit the shared JSON scan encoding (hfxd wire format)")
	)
	flag.Parse()

	f, ok := hfxmd.FunctionalByName(*functional)
	if !ok {
		log.Fatalf("unknown functional %q", *functional)
	}
	scropt := hfxmd.DefaultScreening()
	scropt.Threshold = *eps
	cfg := hfxmd.SCFConfig{
		Basis:      *basisName,
		Functional: f,
		Screen:     scropt,
		MaxIter:    120,
		Damping:    0.5, DampIters: 8,
		LevelShift: 0.3,
	}

	coords := make([]float64, *points)
	for i := range coords {
		coords[i] = *rmax + (*rmin-*rmax)*float64(i)/float64(*points-1)
	}

	if !*jsonOut {
		fmt.Printf("Li2O2 attack profiles, %s/%s, ε=%g\n", *functional, *basisName, *eps)
	}
	type verdict struct {
		name string
		well float64 // hartree, most negative relative energy vs separated
	}
	var results []verdict
	var scans []*hfxmd.ScanSummary
	for _, solvent := range []string{"PC", "DMSO"} {
		if !*jsonOut {
			fmt.Printf("\n--- %s + Li2O2 ---\n%10s %16s %14s\n", solvent, "R [bohr]", "E [Eh]", "ΔE [kcal/mol]")
		}
		scan := &hfxmd.ScanSummary{Solvent: solvent}
		var ref, well float64
		for i, r := range coords {
			mol, err := hfxmd.SolvatedPeroxide(solvent, r)
			if err != nil {
				log.Fatal(err)
			}
			res, err := hfxmd.RunSCF(mol, cfg)
			if err != nil {
				log.Fatal(err)
			}
			if !res.Converged {
				if !*jsonOut {
					fmt.Printf("%10.2f   (SCF not converged after %d iterations)\n", r, res.Iterations)
				}
				scan.Points = append(scan.Points, hfxmd.ScanPointJSON{R: r, Energy: res.Energy})
				continue
			}
			if i == 0 {
				ref = res.Energy
			}
			rel := res.Energy - ref
			scan.Points = append(scan.Points, hfxmd.ScanPointJSON{
				R: r, Energy: res.Energy, Rel: rel, Converged: true,
			})
			if !*jsonOut {
				fmt.Printf("%10.2f %16.8f %14.2f\n", r, res.Energy, rel*phys.HartreeToKcalMol)
			}
			if rel < well {
				well = rel
			}
		}
		scan.WellKcal = well * phys.HartreeToKcalMol
		scans = append(scans, scan)
		results = append(results, verdict{solvent, well})
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(scans); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Println("\n=== stability verdict ===")
	for _, r := range results {
		fmt.Printf("%-5s Li2O2 encounter well: %8.2f kcal/mol\n", r.name, r.well*phys.HartreeToKcalMol)
	}
	// Electrophilicity panel: the degradation pathway is nucleophilic
	// attack of the peroxide on the solvent, gauged by the LUMO of the
	// isolated molecule.
	lumo := map[string]float64{}
	for _, pair := range []struct {
		name string
		mol  *hfxmd.Molecule
	}{{"PC", hfxmd.PropyleneCarbonate()}, {"DMSO", hfxmd.DimethylSulfoxide()}} {
		res, err := hfxmd.RunSCF(pair.mol, cfg)
		if err != nil {
			log.Fatal(err)
		}
		lumo[pair.name] = res.LUMO()
		fmt.Printf("%-5s LUMO (electrophilicity): %8.4f Eh\n", pair.name, res.LUMO())
	}
	if lumo["PC"] < lumo["DMSO"] {
		fmt.Println("PC's low-lying carbonate π* invites nucleophilic attack by the peroxide ->")
		fmt.Println("degradation-prone; DMSO-class solvents show enhanced stability (paper's conclusion).")
	} else {
		fmt.Println("NOTE: at this level of theory the ordering is not resolved;")
		fmt.Println("the paper resolves it with PBE0 and realistic liquid models.")
	}
}
