// Command scfrun performs a single-point SCF calculation (HF, LDA, PBE or
// PBE0) on a built-in system or an XYZ file and prints the energy
// decomposition, orbital spectrum, Mulliken charges and dipole moment.
//
// Usage:
//
//	scfrun -system water -functional PBE0 -basis STO-3G
//	scfrun -xyz geometry.xyz -functional HF -threads 8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"hfxmd"
	"hfxmd/internal/phys"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scfrun: ")
	var (
		xyzPath    = flag.String("xyz", "", "path to an XYZ geometry (ångström)")
		system     = flag.String("system", "water", "built-in system: water|h2|he|lih|lif|ch4|pc|dmso|li2o2|watercluster")
		nwater     = flag.Int("n", 4, "cluster size for -system watercluster")
		basisName  = flag.String("basis", "STO-3G", "basis set: "+strings.Join(hfxmd.AvailableBasisSets(), "|"))
		functional = flag.String("functional", "HF", "functional: HF|LDA|PBE|PBE0")
		threads    = flag.Int("threads", 0, "HFX worker threads (0 = all CPUs)")
		eps        = flag.Float64("screen", 1e-8, "integral screening threshold")
		charge     = flag.Int("charge", 0, "total molecular charge")
		uhf        = flag.Bool("uhf", false, "spin-unrestricted SCF (HF only)")
		mult       = flag.Int("mult", 0, "spin multiplicity 2S+1 for -uhf (0 = lowest)")
		jsonOut    = flag.Bool("json", false, "emit the shared JSON result encoding (hfxd wire format)")
		cacheMB    = flag.Int("cache-mb", 0, "semi-direct ERI block cache budget in MiB (0 = fully direct builds)")
	)
	flag.Parse()

	mol, err := pickSystem(*xyzPath, *system, *nwater)
	if err != nil {
		log.Fatal(err)
	}
	mol.Charge = *charge

	f, ok := hfxmd.FunctionalByName(*functional)
	if !ok {
		log.Fatalf("unknown functional %q", *functional)
	}
	scropt := hfxmd.DefaultScreening()
	scropt.Threshold = *eps
	hfxopt := hfxmd.PaperExchangeOptions()
	hfxopt.Threads = *threads
	hfxopt.CacheBudgetBytes = int64(*cacheMB) << 20

	if !*jsonOut {
		fmt.Printf("System     : %s (%s), charge %d, %d electrons\n",
			mol.Name, mol.Formula(), mol.Charge, mol.NElectrons())
		fmt.Printf("Model      : %s/%s, screening ε = %g\n", *functional, *basisName, *eps)
	}

	cfg := hfxmd.SCFConfig{
		Basis:      *basisName,
		Functional: f,
		Screen:     scropt,
		HFX:        hfxopt,
	}
	if *uhf {
		if *jsonOut {
			log.Fatal("-json is not supported with -uhf")
		}
		runUHF(mol, cfg, *mult)
		return
	}
	res, err := hfxmd.RunSCF(mol, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(hfxmd.SummarizeSCF(res)); err != nil {
			log.Fatal(err)
		}
		return
	}
	if !res.Converged {
		fmt.Fprintf(os.Stderr, "WARNING: SCF did not converge in %d iterations\n", res.Iterations)
	}

	fmt.Printf("\nConverged  : %v in %d iterations\n", res.Converged, res.Iterations)
	fmt.Printf("Total      : %14.8f Eh  (%.4f eV)\n", res.Energy, res.Energy*phys.HartreeToEV)
	fmt.Printf("  one-el.  : %14.8f Eh\n", res.EOne)
	fmt.Printf("  Coulomb  : %14.8f Eh\n", res.ECoulomb)
	fmt.Printf("  HF-X     : %14.8f Eh\n", res.EExchangeHF)
	fmt.Printf("  XC(grid) : %14.8f Eh\n", res.EXC)
	fmt.Printf("  nuclear  : %14.8f Eh\n", res.ENuclear)
	fmt.Printf("HOMO/LUMO  : %10.5f / %10.5f Eh (gap %.4f eV)\n",
		res.HOMO(), res.LUMO(), res.Gap()*phys.HartreeToEV)

	fmt.Printf("\nHFX build  : %s\n", res.HFXReport)
	fmt.Printf("screening  : %s (schwarz %v, sweep %v, %d threads)\n",
		res.HFXReport.ScreeningStats,
		res.HFXReport.ScreeningStats.SchwarzWall,
		res.HFXReport.ScreeningStats.PairWall,
		res.HFXReport.ScreeningStats.Threads)
	fmt.Printf("pool       : %d workers, %d persistent buffers (%.1f MiB), %d builds, %d reuse hits\n",
		res.HFXReport.Pool.Workers, res.HFXReport.Pool.BuffersAllocated,
		float64(res.HFXReport.Pool.BufferBytes)/(1<<20),
		res.HFXReport.Pool.Builds, res.HFXReport.Pool.ReuseHits)
	if c := res.HFXReport.Cache; c.Enabled {
		fmt.Printf("eri cache  : %d quartets admitted (%.1f/%.1f MiB), last build %d hits / %d misses (%.0f%% hit)\n",
			c.AdmittedQuartets, float64(c.UsedBytes)/(1<<20), float64(c.BudgetBytes)/(1<<20),
			c.Hits, c.Misses, 100*c.HitRatio())
	}
	fmt.Printf("accounting (last build + pool lifetime):\n%s", res.HFXReport.PhaseTable())

	mu := hfxmd.DipoleMoment(res)
	fmt.Printf("Dipole     : (%.4f, %.4f, %.4f) a.u.\n", mu[0], mu[1], mu[2])
	fmt.Println("\nMulliken charges:")
	for i, q := range hfxmd.MullikenCharges(res) {
		fmt.Printf("  %-2s %8.4f\n", mol.Atoms[i].El, q)
	}
}

func runUHF(mol *hfxmd.Molecule, cfg hfxmd.SCFConfig, mult int) {
	res, err := hfxmd.RunUHF(mol, cfg, mult)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Converged {
		fmt.Fprintf(os.Stderr, "WARNING: UHF did not converge in %d iterations\n", res.Iterations)
	}
	fmt.Printf("\nConverged  : %v in %d iterations (UHF, %d alpha / %d beta)\n",
		res.Converged, res.Iterations, res.NAlpha, res.NBeta)
	fmt.Printf("Total      : %14.8f Eh  (%.4f eV)\n", res.Energy, res.Energy*phys.HartreeToEV)
	fmt.Printf("  one-el.  : %14.8f Eh\n", res.EOne)
	fmt.Printf("  Coulomb  : %14.8f Eh\n", res.ECoulomb)
	fmt.Printf("  exchange : %14.8f Eh\n", res.EExchange)
	fmt.Printf("  nuclear  : %14.8f Eh\n", res.ENuclear)
	fmt.Printf("<S²>       : %8.4f (exact %8.4f)\n", res.S2, res.S2Exact())
}

func pickSystem(xyzPath, system string, nwater int) (*hfxmd.Molecule, error) {
	if xyzPath != "" {
		f, err := os.Open(xyzPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return hfxmd.ReadXYZ(f)
	}
	switch strings.ToLower(system) {
	case "water":
		return hfxmd.Water(), nil
	case "h2":
		return hfxmd.Hydrogen(1.4), nil
	case "he":
		return hfxmd.Helium(), nil
	case "lih":
		return hfxmd.LithiumHydride(), nil
	case "lif":
		return hfxmd.LithiumFluoride(), nil
	case "ch4":
		return hfxmd.Methane(), nil
	case "pc":
		return hfxmd.PropyleneCarbonate(), nil
	case "dmso":
		return hfxmd.DimethylSulfoxide(), nil
	case "li2o2":
		return hfxmd.LithiumPeroxide(), nil
	case "watercluster":
		return hfxmd.WaterCluster(nwater, 1), nil
	default:
		return nil, fmt.Errorf("unknown system %q", system)
	}
}
