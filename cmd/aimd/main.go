// Command aimd runs Born–Oppenheimer molecular dynamics on the SCF
// potential-energy surface (experiment E7: hybrid-functional AIMD
// feasibility and energy conservation).
//
// Usage:
//
//	aimd -system h2 -steps 20 -dt 0.4 -functional HF
//	aimd -system water -steps 10 -functional PBE0 -temp 300
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"hfxmd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aimd: ")
	var (
		system     = flag.String("system", "h2", "system: h2|water|lih")
		functional = flag.String("functional", "HF", "functional: HF|LDA|PBE|PBE0")
		basisName  = flag.String("basis", "STO-3G", "basis set")
		steps      = flag.Int("steps", 10, "MD steps")
		dt         = flag.Float64("dt", 0.4, "timestep in fs")
		temp       = flag.Float64("temp", 0, "initial temperature in K (0 = static start)")
		thermostat = flag.Bool("thermostat", false, "enable Berendsen thermostat")
	)
	flag.Parse()

	var mol *hfxmd.Molecule
	switch strings.ToLower(*system) {
	case "h2":
		mol = hfxmd.Hydrogen(1.5) // slightly stretched: visible dynamics
	case "water":
		mol = hfxmd.Water()
	case "lih":
		mol = hfxmd.LithiumHydride()
	default:
		log.Fatalf("unknown system %q", *system)
	}
	f, ok := hfxmd.FunctionalByName(*functional)
	if !ok {
		log.Fatalf("unknown functional %q", *functional)
	}
	pot := hfxmd.SCFPotential(hfxmd.SCFConfig{Basis: *basisName, Functional: f})

	fmt.Printf("BOMD: %s, %s/%s, %d steps of %.2f fs, T0=%.0fK thermostat=%v\n\n",
		mol.Name, *functional, *basisName, *steps, *dt, *temp, *thermostat)
	traj, err := hfxmd.RunMD(mol, pot, hfxmd.MDOptions{
		Steps: *steps, Dt: *dt, TemperatureK: *temp, Thermostat: *thermostat, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%5s %8s %16s %14s %16s %9s\n", "step", "t [fs]", "E_pot [Eh]", "E_kin [Eh]", "E_tot [Eh]", "T [K]")
	for _, fr := range traj.Frames {
		fmt.Printf("%5d %8.2f %16.8f %14.8f %16.8f %9.1f\n",
			fr.Step, fr.TimeFS, fr.Potential, fr.Kinetic, fr.Total, fr.TempK)
	}
	fmt.Printf("\nenergy drift (peak-to-peak per atom): %.3e Eh\n", traj.EnergyDrift())
}
