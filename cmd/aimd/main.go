// Command aimd runs Born–Oppenheimer molecular dynamics on the SCF
// potential-energy surface (experiment E7: hybrid-functional AIMD
// feasibility and energy conservation), with durable checkpoint/restart.
//
// Usage:
//
//	aimd -system h2 -steps 20 -dt 0.4 -functional HF
//	aimd -system water -steps 10 -functional PBE0 -temp 300
//
// Multiple time stepping (r-RESPA): the full surface every k-th step,
// a cheap reference force in between. -steps then counts outer steps:
//
//	aimd -system h2 -steps 10 -k 4 -ref spring -functional PBE0
//
// Checkpointed trajectory, killed and resumed:
//
//	aimd -system h2 -steps 200 -ckpt-dir run1 -ckpt-every 10   # SIGKILL it
//	aimd -system h2 -steps 200 -ckpt-dir run1 -resume          # continues
//
// The resumed trajectory is bitwise identical to an uninterrupted one:
// every completed step is journaled before the next begins, and the
// integrator re-executes deterministically from any durable state. The
// -json summary's finalStateSha256 fingerprints the complete final MD
// state, so two runs agree on it iff they agree on every bit.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"hfxmd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aimd: ")
	var (
		system     = flag.String("system", "h2", "system: h2|water|lih")
		functional = flag.String("functional", "HF", "functional: HF|LDA|PBE|PBE0")
		basisName  = flag.String("basis", "STO-3G", "basis set")
		steps      = flag.Int("steps", 10, "MD steps")
		dt         = flag.Float64("dt", 0.4, "timestep in fs")
		temp       = flag.Float64("temp", 0, "initial temperature in K (0 = static start)")
		thermostat = flag.Bool("thermostat", false, "enable Berendsen thermostat")
		seed       = flag.Int64("seed", 7, "velocity-initialisation seed")

		respaK = flag.Int("k", 1, "RESPA inner steps per full-force evaluation (1 = plain velocity Verlet; with k>1, -steps counts outer steps and -dt is the inner timestep)")
		ref    = flag.String("ref", "spring", "RESPA cheap reference force: spring|loose|baseline (only with -k > 1)")

		storeDir = flag.String("store-dir", "", "tiered store directory: each SCF warm-starts from the previous step's converged density (same tolerance, different bits than a cold run)")

		ckptDir   = flag.String("ckpt-dir", "", "checkpoint directory (empty disables checkpointing)")
		ckptEvery = flag.Int64("ckpt-every", 10, "snapshot cadence in steps (journal covers the gaps)")
		ckptKeep  = flag.Int("ckpt-keep", 3, "snapshot ring size")
		resume    = flag.Bool("resume", false, "resume from the most advanced durable state in -ckpt-dir")

		jsonOut = flag.Bool("json", false, "print a JSON summary instead of the frame table")
	)
	flag.Parse()

	var mol *hfxmd.Molecule
	switch strings.ToLower(*system) {
	case "h2":
		mol = hfxmd.Hydrogen(1.5) // slightly stretched: visible dynamics
	case "water":
		mol = hfxmd.Water()
	case "lih":
		mol = hfxmd.LithiumHydride()
	default:
		log.Fatalf("unknown system %q", *system)
	}
	f, ok := hfxmd.FunctionalByName(*functional)
	if !ok {
		log.Fatalf("unknown functional %q", *functional)
	}
	scfCfg := hfxmd.SCFConfig{Basis: *basisName, Functional: f}
	pot := hfxmd.SCFPotential(scfCfg)
	var st *hfxmd.Store
	if *storeDir != "" {
		var err error
		st, err = hfxmd.OpenStore(hfxmd.StoreOptions{Dir: *storeDir})
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
		pot = hfxmd.StoredSCFPotential(scfCfg, st)
	}

	opts := hfxmd.MDOptions{
		Steps: *steps, Dt: *dt, TemperatureK: *temp, Thermostat: *thermostat, Seed: *seed,
	}

	reg := hfxmd.NewTraceRegistry()
	var res *hfxmd.CkptResume
	if *resume {
		if *ckptDir == "" {
			log.Fatal("-resume requires -ckpt-dir")
		}
		r, err := hfxmd.LoadCkpt(*ckptDir, reg)
		if err != nil {
			if errors.Is(err, hfxmd.ErrNoCheckpoint) {
				log.Fatalf("%s holds no usable checkpoint", *ckptDir)
			}
			log.Fatal(err)
		}
		res = r
		opts.Resume = r.State
	}
	if *ckptDir != "" {
		w, err := hfxmd.NewCkptWriter(hfxmd.CkptConfig{
			Dir: *ckptDir, Every: *ckptEvery, Keep: *ckptKeep, Registry: reg,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
		opts.Ckpt = w
	}

	if !*jsonOut {
		if *respaK > 1 {
			fmt.Printf("RESPA BOMD: %s, %s/%s, %d outer steps x %d inner of %.2f fs (ref %s), T0=%.0fK thermostat=%v\n",
				mol.Name, *functional, *basisName, *steps, *respaK, *dt, *ref, *temp, *thermostat)
		} else {
			fmt.Printf("BOMD: %s, %s/%s, %d steps of %.2f fs, T0=%.0fK thermostat=%v\n",
				mol.Name, *functional, *basisName, *steps, *dt, *temp, *thermostat)
		}
		if res != nil {
			fmt.Printf("resumed from step %d (snapshot %d, journal %d, %d replayed, %d fallbacks)\n",
				res.State.Step, res.SnapshotStep, res.JournalStep, res.ReplayedSteps, res.Fallbacks)
		}
		fmt.Println()
	}

	t0 := time.Now()
	var traj *hfxmd.Trajectory
	var err error
	if *respaK > 1 {
		// Multiple time stepping: the full surface (FD forces on the SCF
		// potential, including any store-seeded variant) every k-th step,
		// the named cheap reference in between.
		cheap, label, rerr := hfxmd.BuildRespaReference(*ref, mol, scfCfg, 0, 0)
		if rerr != nil {
			log.Fatal(rerr)
		}
		traj, err = hfxmd.RunRESPA(mol, hfxmd.RespaFDEvaluator(pot, 0, 0), cheap, hfxmd.RespaOptions{
			Steps: *steps, K: *respaK, Dt: *dt, TemperatureK: *temp,
			Thermostat: *thermostat, Seed: *seed, RefLabel: label,
			Ckpt: opts.Ckpt, Resume: opts.Resume,
		})
	} else {
		traj, err = hfxmd.RunMD(mol, pot, opts)
	}
	if err != nil {
		var se *hfxmd.MDStepError
		if errors.As(err, &se) {
			log.Fatalf("trajectory failed at step %d: %v (resume from -ckpt-dir to retry)", se.Step, se.Err)
		}
		log.Fatal(err)
	}
	wall := time.Since(t0)

	if *jsonOut {
		sum := hfxmd.SummarizeMD(traj, wall)
		if *respaK > 1 {
			sum.RespaK = *respaK
		}
		if res != nil {
			step := res.State.Step
			sum.ResumedFromStep = &step
			sum.ReplayedSteps = res.ReplayedSteps
		}
		if *ckptDir != "" {
			sum.CkptSnapshots = reg.Counter("ckpt.snapshots").Value()
			sum.CkptSnapshotBytes = reg.Counter("ckpt.snapshot_bytes").Value()
			sum.CkptJournalAppends = reg.Counter("ckpt.journal_appends").Value()
			sum.CkptJournalBytes = reg.Counter("ckpt.journal_bytes").Value()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("%5s %8s %16s %14s %16s %9s\n", "step", "t [fs]", "E_pot [Eh]", "E_kin [Eh]", "E_tot [Eh]", "T [K]")
	for _, fr := range traj.Frames {
		fmt.Printf("%5d %8.2f %16.8f %14.8f %16.8f %9.1f\n",
			fr.Step, fr.TimeFS, fr.Potential, fr.Kinetic, fr.Total, fr.TempK)
	}
	fmt.Printf("\nenergy drift (peak-to-peak per atom): %.3e Eh\n", traj.EnergyDrift())
	if st != nil {
		fmt.Printf("store: %d SCF calls density-seeded, %d fallbacks (%s)\n",
			st.Registry().Counter("md.density_seeded").Value(),
			st.Registry().Counter("md.seed_fallbacks").Value(), *storeDir)
	}
	if *ckptDir != "" {
		fmt.Printf("checkpoints: %d snapshots (%d bytes), %d journal appends (%d bytes) in %s\n",
			reg.Counter("ckpt.snapshots").Value(), reg.Counter("ckpt.snapshot_bytes").Value(),
			reg.Counter("ckpt.journal_appends").Value(), reg.Counter("ckpt.journal_bytes").Value(),
			*ckptDir)
	}
}
