// Command hfxd runs the concurrent SCF/HFX job service: an HTTP/JSON
// front end that prices every job from its screened pair list (the
// paper's cost-predictability claim, turned into admission control),
// executes on a fixed pool of workers owning long-lived builders, and
// caches results by canonical job hash.
//
// Serve (default):
//
//	hfxd -addr 127.0.0.1:8080 -workers 4 -queue 64
//
// Submit a job to a running server (-submit switches to client mode):
//
//	hfxd -submit -url http://127.0.0.1:8080 -system water -functional PBE0
//
// Or with curl:
//
//	curl -s http://127.0.0.1:8080/v1/jobs -d '{"kind":"scf","system":"water","basis":"STO-3G"}'
//	curl -s http://127.0.0.1:8080/metrics
//
// SIGINT/SIGTERM trigger a graceful drain: admission closes immediately
// (429/503 for newcomers), queued and in-flight jobs complete, builders
// are closed, then the process exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hfxmd/internal/server"
	"hfxmd/internal/steal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hfxd: ")
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		workers  = flag.Int("workers", 4, "job workers (each owns long-lived builder state)")
		queueCap = flag.Int("queue", 64, "admission queue capacity")
		cacheMB  = flag.Int("cache-mb", 64, "hot result-cache byte budget in MiB (negative disables)")
		storeDir = flag.String("store-dir", "", "tiered store directory: results, prefix densities and ERI spills persist here and survive restarts (empty = memory only)")
		threads  = flag.Int("threads", 1, "HFX threads per builder")
		timeout  = flag.Duration("timeout", 2*time.Minute, "default per-job deadline")
		drain    = flag.Duration("drain", 30*time.Second, "graceful shutdown drain budget")
		aging    = flag.Float64("aging", 1e8, "queue starvation aging (predicted ns per queued second)")
		journal  = flag.String("journal", "", "crash-safe job journal path (empty disables); queued and running jobs are re-enqueued on boot")
		calib    = flag.Bool("calibrate", true, "learn per-class cost factors from measured block walls; admission prices and Retry-After move to measured units (persists under -store-dir)")

		submit  = flag.Bool("submit", false, "client mode: submit one job and print the JSON result")
		url     = flag.String("url", "http://127.0.0.1:8080", "server URL for -submit")
		kind    = flag.String("kind", "scf", "job kind for -submit: scf|buildjk|screen|solvent-scan|trajectory")
		system  = flag.String("system", "water", "built-in system for -submit")
		basis   = flag.String("basis", "STO-3G", "basis set for -submit")
		funcnl  = flag.String("functional", "HF", "functional for -submit")
		eps     = flag.Float64("screen", 1e-8, "screening threshold for -submit")
		points  = flag.Int("points", 5, "scan points for -submit -kind solvent-scan")
		mdSteps = flag.Int("md-steps", 4, "outer MD steps for -submit -kind trajectory")
		respaK  = flag.Int("respa-k", 2, "RESPA inner steps per full force for -submit -kind trajectory")
		mdRef   = flag.String("md-ref", "spring", "cheap reference force for -submit -kind trajectory: spring|loose|baseline")
	)
	flag.Parse()

	if *submit {
		if err := runSubmit(*url, *kind, *system, *basis, *funcnl, *eps, *points, *mdSteps, *respaK, *mdRef); err != nil {
			log.Fatal(err)
		}
		return
	}

	cacheBytes := int64(*cacheMB) << 20
	if *cacheMB < 0 {
		cacheBytes = -1
	}
	var cal *steal.Calibrator
	if *calib {
		cal = steal.NewCalibrator(0.5)
	}
	srv, err := server.New(server.Config{
		Calibrator:     cal,
		Workers:        *workers,
		QueueCap:       *queueCap,
		CacheBytes:     cacheBytes,
		StoreDir:       *storeDir,
		BuilderThreads: *threads,
		DefaultTimeout: *timeout,
		AgingNSPerSec:  *aging,
		JournalPath:    *journal,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// The resolved address line is the machine-readable handshake the
	// smoke test greps for; keep its format stable.
	fmt.Printf("hfxd: listening on http://%s (workers=%d queue=%d cache-mb=%d)\n",
		ln.Addr(), *workers, *queueCap, *cacheMB)

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-sigCtx.Done():
	}

	log.Printf("draining (budget %v)...", *drain)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	} else {
		log.Printf("drained cleanly")
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
}

func runSubmit(url, kind, system, basis, functional string, eps float64, points, mdSteps, respaK int, mdRef string) error {
	req := server.JobRequest{
		Kind:       kind,
		Basis:      basis,
		Functional: functional,
		Screen:     eps,
	}
	switch kind {
	case server.KindSolventScan:
		req.Solvent = system
		req.Points = points
	case server.KindTrajectory:
		req.System = system
		req.MaxSteps = mdSteps
		req.RespaK = respaK
		req.Ref = mdRef
	default:
		req.System = system
	}
	c := server.NewClient(url)
	res, err := c.Submit(context.Background(), req)
	if err != nil {
		var busy *server.BusyError
		if errors.As(err, &busy) {
			return fmt.Errorf("server busy; retry after %v", busy.RetryAfter)
		}
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
