// PC degradation: the Li/air electrolyte chemistry of the paper
// (experiment E8) in an example-sized setting. A lithium-peroxide unit
// approaches propylene carbonate's carbonate carbon out-of-plane and, for
// comparison, the open face of dimethyl sulfoxide; the interaction
// profiles probe which solvent binds the peroxide more strongly — the
// precursor of the ring-opening degradation the paper demonstrates, and
// the reason it proposes alternative solvent classes.
//
// The example uses HF/STO-3G with two distances per solvent so it runs in
// a few minutes even on one core; cmd/solvents exposes denser scans and
// the full PBE0 treatment.
package main

import (
	"fmt"
	"log"

	"hfxmd"
	"hfxmd/internal/phys"
)

func main() {
	coords := []float64{9.0, 4.2}
	scropt := hfxmd.DefaultScreening()
	scropt.Threshold = 1e-6
	cfg := hfxmd.SCFConfig{
		Screen:  scropt,
		MaxIter: 100, Damping: 0.5, DampIters: 8, LevelShift: 0.3,
	}

	fmt.Println("Li2O2 approach energies (HF/STO-3G, rigid fragments)")
	wells := map[string]float64{}
	for _, solvent := range []string{"PC", "DMSO"} {
		fmt.Printf("\n%s + Li2O2:\n%10s %16s %14s\n", solvent, "R [bohr]", "E [Eh]", "ΔE [kcal/mol]")
		var ref float64
		for i, r := range coords {
			mol, err := hfxmd.SolvatedPeroxide(solvent, r)
			if err != nil {
				log.Fatal(err)
			}
			res, err := hfxmd.RunSCF(mol, cfg)
			if err != nil {
				log.Fatal(err)
			}
			if i == 0 {
				ref = res.Energy
			}
			rel := (res.Energy - ref) * phys.HartreeToKcalMol
			fmt.Printf("%10.2f %16.8f %14.2f\n", r, res.Energy, rel)
			if rel < wells[solvent] {
				wells[solvent] = rel
			}
		}
	}
	fmt.Printf("\nencounter energies near contact: PC %.1f kcal/mol, DMSO %.1f kcal/mol\n",
		wells["PC"], wells["DMSO"])

	// Electrophilicity (degradation propensity): LUMO of each solvent.
	fmt.Println("\nelectrophilicity (isolated-solvent LUMO):")
	lumo := map[string]float64{}
	for _, pair := range []struct {
		name string
		mol  *hfxmd.Molecule
	}{{"PC", hfxmd.PropyleneCarbonate()}, {"DMSO", hfxmd.DimethylSulfoxide()}} {
		res, err := hfxmd.RunSCF(pair.mol, cfg)
		if err != nil {
			log.Fatal(err)
		}
		lumo[pair.name] = res.LUMO()
		fmt.Printf("  %-5s %8.4f Eh\n", pair.name, res.LUMO())
	}
	if lumo["PC"] < lumo["DMSO"] {
		fmt.Println("=> PC's carbonate π* is the easier nucleophilic target:")
		fmt.Println("   consistent with the paper's degradation finding for PC")
	}
}
