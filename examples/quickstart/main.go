// Quickstart: a Hartree–Fock single point on water through the public
// API — the five-minute tour of hfxmd.
package main

import (
	"fmt"
	"log"
	"math"

	"hfxmd"
)

func main() {
	// 1. Build a molecule (bohr coordinates; builders included).
	mol := hfxmd.Water()
	fmt.Printf("molecule: %s (%d electrons)\n", mol.Formula(), mol.NElectrons())

	// 2. Run an SCF. The zero-value config means HF/STO-3G with the
	// paper's production exchange builder underneath.
	res, err := hfxmd.RunSCF(mol, hfxmd.SCFConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HF/STO-3G energy: %.8f Eh (converged=%v in %d iterations)\n",
		res.Energy, res.Converged, res.Iterations)

	// 3. Inspect the exact-exchange build that powered each iteration —
	// the object of the reproduced paper.
	fmt.Printf("exchange build:   %s\n", res.HFXReport)

	// 4. Upgrade to the paper's production functional, PBE0.
	res0, err := hfxmd.RunSCF(mol, hfxmd.SCFConfig{
		Functional: hfxmd.PBE0{},
		Grid:       hfxmd.GridSpec{NRadial: 32, NAngular: 26},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PBE0/STO-3G energy: %.8f Eh (¼ exact exchange = %.6f Eh)\n",
		res0.Energy, res0.EExchangeHF)

	// 5. Properties.
	mu := hfxmd.DipoleMoment(res)
	fmt.Printf("dipole: %.4f a.u.; Mulliken q(O) = %.4f\n",
		norm3(mu), hfxmd.MullikenCharges(res)[0])
}

func norm3(v [3]float64) float64 {
	return math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
}
