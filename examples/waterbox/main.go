// Waterbox: the condensed-phase screening study (experiment E4 in
// miniature). Growing liquid-density water clusters are screened at a
// range of thresholds ε; the program reports how many shell pairs and
// quartets survive and how far the screened exchange matrix deviates
// from the unscreened one — the paper's "highly controllable accuracy".
package main

import (
	"fmt"
	"log"

	"hfxmd"
)

func main() {
	fmt.Println("E4: screening threshold vs. surviving work and exchange error")

	// Part 1: error control on a fixed cluster.
	mol := hfxmd.WaterCluster(3, 1)
	exact := buildK(mol, 1e-16)
	fmt.Printf("\n(H2O)3, reference K built at ε=1e-16\n")
	fmt.Printf("%10s %12s %14s %16s\n", "ε", "quartets", "screened-out", "max|ΔK|")
	for _, eps := range []float64{1e-4, 1e-6, 1e-8, 1e-10, 1e-12} {
		k, rep := buildKWithReport(mol, eps)
		maxd := 0.0
		for i, v := range k.Data {
			d := v - exact.Data[i]
			if d < 0 {
				d = -d
			}
			if d > maxd {
				maxd = d
			}
		}
		fmt.Printf("%10.0e %12d %14d %16.3e\n", eps, rep.QuartetsComputed, rep.QuartetsScreened, maxd)
	}

	// Part 2: work growth with system size under fixed ε.
	fmt.Printf("\nwork growth at ε=1e-8 (distance + Schwarz screening)\n")
	fmt.Printf("%8s %10s %12s %14s\n", "waters", "pairs", "quartets", "quartets/water")
	for _, n := range []int{1, 2, 4, 8, 12} {
		m := hfxmd.WaterCluster(n, 1)
		_, rep := buildKWithReport(m, 1e-8)
		pairs := rep.ScreeningStats.SchwarzSurvived
		fmt.Printf("%8d %10d %12d %14.0f\n", n, pairs, rep.QuartetsComputed,
			float64(rep.QuartetsComputed)/float64(n))
	}
}

func buildK(mol *hfxmd.Molecule, eps float64) *hfxmd.Matrix {
	k, _ := buildKWithReport(mol, eps)
	return k
}

func buildKWithReport(mol *hfxmd.Molecule, eps float64) (*hfxmd.Matrix, hfxmd.ExchangeReport) {
	sopts := hfxmd.DefaultScreening()
	sopts.Threshold = eps
	opts := hfxmd.PaperExchangeOptions()
	opts.DensityWeighted = false
	b, err := hfxmd.NewExchangeBuilder(mol, "STO-3G", sopts, opts)
	if err != nil {
		log.Fatal(err)
	}
	// A superposition-of-atomic-densities-like diagonal density is enough
	// to exercise the contraction.
	n := b.NBasis()
	p := &hfxmd.Matrix{Rows: n, Cols: n, Data: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		p.Set(i, i, 1)
	}
	_, k, rep := b.BuildJK(p)
	return k, rep
}
