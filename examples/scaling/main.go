// Scaling: the headline experiment (E1/E2) through the public API — a
// strong-scaling study of the paper's HFX scheme from 1 to 96 BG/Q racks
// (65,536 → 6,291,456 hardware threads) on the simulator, compared
// against the state-of-the-art baseline decomposition.
package main

import (
	"fmt"
	"log"

	"hfxmd"
)

func main() {
	const waters = 2048
	paper := hfxmd.CondensedPhaseWorkload(waters, 1<<20, 1)
	base := hfxmd.BaselineWorkload(waters, 1)
	racks := []int{1, 4, 16, 64, 96}

	pPts, err := hfxmd.StrongScaling(paper, racks, hfxmd.PaperScheme())
	if err != nil {
		log.Fatal(err)
	}
	bPts, err := hfxmd.StrongScaling(base, racks, hfxmd.BaselineScheme())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("strong scaling, %s\n\n", paper.Name)
	fmt.Printf("%6s %10s | %12s %10s | %12s %10s\n",
		"racks", "threads", "paper [s]", "eff", "baseline [s]", "eff")
	for i := range pPts {
		fmt.Printf("%6d %10d | %12.4f %9.1f%% | %12.4f %9.1f%%\n",
			pPts[i].Racks, pPts[i].Threads,
			pPts[i].Result.Total, 100*pPts[i].Efficiency,
			bPts[i].Result.Total, 100*bPts[i].Efficiency)
	}
	fmt.Printf("\nuseful threads: paper %d vs baseline %d (%.0fx scalability improvement)\n",
		hfxmd.SaturationThreads(pPts), hfxmd.SaturationThreads(bPts),
		float64(hfxmd.SaturationThreads(pPts))/float64(hfxmd.SaturationThreads(bPts)))
}
